"""Behavioural assertions on the open-system scenarios.

The golden harness pins the *exact* trajectories of ``open_diurnal`` and
``flash_crowd``; these tests state why those trajectories are the right
ones — the flash crowd is absorbed by shedding the bursting tenant while
the steady tenant keeps its SLO, and the diurnal open sweep surfaces the
backlog/tail-percentile signature of sustained overload.
"""

import pytest

from repro.experiments.config import ExperimentScale, default_system_params
from repro.experiments.stationary import run_stationary_point, stationary_sweep_spec
from repro.runner.api import run_sweep
from repro.runner.registry import build_sweep
from repro.tp.arrivals import OpenArrivals
from repro.tp.workload import TransactionClassSpec


@pytest.fixture(scope="module")
def flash_crowd_cells():
    result = run_sweep(build_sweep("flash_crowd", scale=ExperimentScale.smoke()),
                       workers=1)
    return result.results


@pytest.fixture(scope="module")
def open_diurnal_cells():
    result = run_sweep(build_sweep("open_diurnal", scale=ExperimentScale.smoke()),
                       workers=1)
    return result.results


class TestFlashCrowdSLO:
    def test_only_the_bursting_tenant_is_shed(self, flash_crowd_cells):
        assert any(cell.metrics["tenant_shed_burst"] > 0
                   for cell in flash_crowd_cells)
        for cell in flash_crowd_cells:
            assert cell.metrics["tenant_shed_steady"] == 0.0, cell.cell_id
            assert cell.metrics["shed"] == cell.metrics["tenant_shed_burst"]

    def test_steady_tenant_keeps_its_slo_through_the_crowd(self, flash_crowd_cells):
        """In every overloaded cell the quota machinery holds the steady
        tenant's tail below the bursting tenant's."""
        overloaded = [cell for cell in flash_crowd_cells
                      if cell.metrics["shed"] > 0]
        assert overloaded, "the flash crowd never overloaded the gate"
        for cell in overloaded:
            steady = cell.metrics["tenant_p95_response_time_steady"]
            burst = cell.metrics["tenant_p95_response_time_burst"]
            assert 0.0 < steady < burst, cell.cell_id
            assert steady < 1.0, f"{cell.cell_id}: steady p95 {steady} blew the SLO"

    def test_both_tenants_commit_in_every_cell(self, flash_crowd_cells):
        for cell in flash_crowd_cells:
            assert cell.metrics["tenant_commits_steady"] > 0
            assert cell.metrics["tenant_commits_burst"] > 0

    def test_tenant_metric_schema_is_stable(self, flash_crowd_cells):
        expected = {f"tenant_{metric}_{tenant}"
                    for tenant in ("steady", "burst")
                    for metric in ("commits", "shed", "p95_response_time",
                                   "p99_response_time")}
        for cell in flash_crowd_cells:
            assert expected <= set(cell.metrics), cell.cell_id


class TestOpenDiurnal:
    def test_percentiles_are_ordered_and_positive(self, open_diurnal_cells):
        for cell in open_diurnal_cells:
            assert 0.0 < cell.metrics["p95_response_time"] <= cell.metrics["p99_response_time"]

    def test_backlog_probe_reports_and_grows_with_offered_load(self, open_diurnal_cells):
        by_label = {}
        for cell in open_diurnal_cells:
            assert cell.metrics["probe_arrival_backlog_max"] >= cell.metrics[
                "probe_arrival_backlog_mean"] >= 0.0
            by_label.setdefault(cell.label, []).append(
                cell.metrics["probe_arrival_backlog_mean"])
        for label, backlogs in by_label.items():
            assert backlogs == sorted(backlogs), (
                f"{label}: backlog should grow along the offered-load axis")
            assert backlogs[-1] > 10 * backlogs[0], (
                f"{label}: the top of the grid should be in sustained overload")

    def test_nothing_is_shed_without_queue_quotas(self, open_diurnal_cells):
        for cell in open_diurnal_cells:
            assert cell.metrics["shed"] == 0.0


class TestSweepArrivalThreading:
    def test_callable_arrivals_scale_with_the_offered_load(self):
        sweep = stationary_sweep_spec(
            scale=ExperimentScale.smoke(), label="open", name="open-test",
            arrivals=lambda load: OpenArrivals(0.25 * load))
        loads = [cell.params.n_terminals for cell in sweep.cells]
        rates = [cell.arrivals.rate.value(0.0) for cell in sweep.cells]
        assert rates == [0.25 * load for load in loads]

    def test_shared_arrival_process_is_reused_verbatim(self):
        arrivals = OpenArrivals(12.0)
        sweep = stationary_sweep_spec(
            scale=ExperimentScale.smoke(), label="open", name="open-test",
            arrivals=arrivals)
        assert all(cell.arrivals == arrivals for cell in sweep.cells)

    def test_closed_sweeps_carry_no_arrivals(self):
        sweep = stationary_sweep_spec(scale=ExperimentScale.smoke(),
                                      label="closed", name="closed-test")
        assert all(cell.arrivals is None for cell in sweep.cells)


class TestTenantMetricSchema:
    def test_keys_enumerate_the_spec_classes_even_without_traffic(self):
        """A tenant that never commits still gets its metric keys (schema
        is a pure function of the spec, so replicate aggregation and the
        goldens never see a varying key set)."""
        classes = (
            TransactionClassSpec(name="busy", weight=1.0, accesses_per_txn=4),
            TransactionClassSpec(name="rare", weight=1e-9, accesses_per_txn=4),
        )
        point = run_stationary_point(
            default_system_params(seed=5),
            horizon=2.0, warmup=0.5,
            workload_classes=classes,
            arrivals=OpenArrivals(5.0),
        )
        for name in ("busy", "rare"):
            for metric in ("commits", "shed", "p95_response_time",
                           "p99_response_time"):
                assert f"tenant_{metric}_{name}" in point.tenant_metrics
        assert point.tenant_metrics["tenant_commits_rare"] == 0.0
        assert point.tenant_metrics["tenant_p95_response_time_rare"] == 0.0
