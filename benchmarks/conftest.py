"""Shared fixtures and helpers for the benchmark harness.

Each benchmark regenerates the data series behind one figure of the paper
(or one ablation called out in DESIGN.md).  The benchmarks are *experiment
drivers*, not micro-benchmarks: the interesting output is the series they
print (run ``pytest benchmarks/ --benchmark-only -s``) and attach to the
pytest-benchmark ``extra_info``; the timing numbers simply document how long
each experiment takes to reproduce.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable:

* ``smoke``      -- seconds per experiment, noisy results
* ``benchmark``  -- the default; a few minutes for the whole suite
* ``paper``      -- full-size runs approximating the paper's figures

Execution is controlled with two more variables, both forwarded to
:func:`repro.runner.run_sweep`:

* ``REPRO_BENCH_WORKERS``    -- worker processes per sweep (0 = serial,
  the default; results are identical for every setting)
* ``REPRO_BENCH_REPLICATES`` -- independent replicates per cell (default 1;
  with more, the sweep tables report mean ± 95% CI)
"""

import os

import pytest

from repro.experiments.config import ExperimentScale


def _selected_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "benchmark").lower()
    if name == "smoke":
        return ExperimentScale.smoke()
    if name == "paper":
        return ExperimentScale.paper()
    return ExperimentScale.benchmark()


def _int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None or not value.strip():
        return default
    return int(value)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale selected via REPRO_BENCH_SCALE."""
    return _selected_scale()


@pytest.fixture(scope="session")
def workers() -> int:
    """Worker processes per sweep, selected via REPRO_BENCH_WORKERS."""
    return _int_env("REPRO_BENCH_WORKERS", 0)


@pytest.fixture(scope="session")
def replicates() -> int:
    """Replicates per cell, selected via REPRO_BENCH_REPLICATES."""
    return max(1, _int_env("REPRO_BENCH_REPLICATES", 1))


def run_once(benchmark, function):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are long-running simulations; repeating them for
    statistical timing accuracy would multiply the suite's runtime without
    adding information, so every benchmark uses a single round.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)
