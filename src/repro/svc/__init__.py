"""Persistent sweep service with a content-addressed result cache.

The runner executes cells; the distributed layer fans them out over
networked workers; this package keeps a process *around* between sweeps
and makes repeated work free:

* :mod:`repro.svc.cache` — :class:`~repro.svc.cache.ResultCache`, an
  on-disk content-addressed store of cell results keyed by
  :func:`~repro.runner.specs.run_spec_fingerprint` (a blake2b-256 digest
  of the resolved spec's canonical JSON).  Because every cell is
  bit-deterministic, a cache hit is *provably* byte-identical to a fresh
  simulation — the soundness guarantee ``tests/svc/`` pins end to end;
* :mod:`repro.svc.service` — :class:`~repro.svc.service.SweepService`, a
  FIFO job queue over one cache-backed
  :class:`~repro.dist.coordinator.DistributedExecutor`, accepting
  :class:`~repro.runner.specs.SweepSpec` submissions over the existing
  length-prefixed TCP protocol;
* :mod:`repro.svc.http` — a stdlib HTTP/JSON control plane (submit /
  status / results / cache stats / health) over the same service;
* :mod:`repro.svc.client` — :class:`~repro.svc.client.ServiceClient`
  plus :class:`~repro.svc.client.ServiceExecutor`, which lets any
  executor-shaped caller (``run_sweep(executor=...)``, fuzz campaigns)
  route cells through a running service transparently;
* :mod:`repro.svc.cli` — the ``repro-svc`` console entry point
  (``serve`` / ``submit`` / ``status`` / ``results`` / ``cache`` /
  ``shutdown``).
"""

from repro.svc.cache import CACHE_FORMAT, ResultCache
from repro.svc.service import JobRecord, SweepService

__all__ = [
    "CACHE_FORMAT",
    "JobRecord",
    "ResultCache",
    "SweepService",
]
