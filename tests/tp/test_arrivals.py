"""The arrival-model layer: open/partly-open sources and closed equivalence."""

import math
import pickle

import pytest

from repro.sim.random_streams import RandomStreams
from repro.tp.arrivals import (
    INTERARRIVAL_STREAM,
    SESSION_SIZE_STREAM,
    THINNING_STREAM,
    ClosedArrivals,
    OpenArrivals,
    PartlyOpenArrivals,
    schedule_upper_bound,
)
from repro.tp.params import SystemParams, WorkloadParams
from repro.tp.system import TransactionSystem
from repro.tp.workload import (
    ConstantSchedule,
    JumpSchedule,
    ParameterSchedule,
    SinusoidSchedule,
    StepSchedule,
)


def small_params(**overrides):
    """A tiny configuration that runs in milliseconds."""
    defaults = dict(
        n_terminals=20,
        think_time=0.2,
        n_cpus=2,
        cpu_init=0.002,
        cpu_per_access=0.002,
        cpu_commit=0.002,
        disk_per_access=0.005,
        disk_commit=0.005,
        restart_delay=0.005,
        seed=42,
        workload=WorkloadParams(db_size=200, accesses_per_txn=4,
                                query_fraction=0.25, write_fraction=0.5),
    )
    defaults.update(overrides)
    return SystemParams(**defaults)


class TestScheduleUpperBound:
    def test_constant(self):
        assert schedule_upper_bound(ConstantSchedule(12.0)) == 12.0

    def test_jump_takes_the_larger_side(self):
        assert schedule_upper_bound(JumpSchedule(3.0, 9.0, jump_time=1.0)) == 9.0
        assert schedule_upper_bound(JumpSchedule(9.0, 3.0, jump_time=1.0)) == 9.0

    def test_step_takes_the_overall_maximum(self):
        schedule = StepSchedule(2.0, [(1.0, 7.0), (2.0, 4.0)])
        assert schedule_upper_bound(schedule) == 7.0

    def test_sinusoid_is_mean_plus_abs_amplitude(self):
        schedule = SinusoidSchedule(mean=10.0, amplitude=-6.0, period=4.0)
        assert schedule_upper_bound(schedule) == 16.0

    def test_unknown_schedule_types_are_rejected(self):
        class Weird(ParameterSchedule):
            def value(self, time):
                return 1.0

        with pytest.raises(ValueError, match="majorising rate"):
            schedule_upper_bound(Weird())


class TestOpenArrivalsValidation:
    def test_zero_rate_is_rejected(self):
        with pytest.raises(ValueError, match="positive finite peak"):
            OpenArrivals(0.0)

    def test_negative_static_value_is_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            OpenArrivals(JumpSchedule(10.0, -1.0, jump_time=1.0))

    def test_infinite_peak_is_rejected(self):
        with pytest.raises(ValueError, match="positive finite peak"):
            OpenArrivals(float("inf"))

    def test_dynamic_dip_below_zero_is_allowed(self):
        """A sinusoid that dips negative is clamped at evaluation time
        (and counted), not rejected at construction."""
        OpenArrivals(SinusoidSchedule(mean=5.0, amplitude=8.0, period=4.0))


class TestOpenArrivalsDraws:
    def test_constant_rate_is_exponential_on_the_dedicated_stream(self):
        arrivals = OpenArrivals(4.0)
        gaps = [arrivals.next_interarrival(RandomStreams(7), now=0.0)]
        expected = RandomStreams(7).exponential(INTERARRIVAL_STREAM, 0.25)
        assert gaps[0] == expected

    def test_constant_rate_mean_matches_the_rate(self):
        arrivals = OpenArrivals(4.0)
        streams = RandomStreams(3)
        now = 0.0
        gaps = []
        for _ in range(4000):
            gap = arrivals.next_interarrival(streams, now)
            gaps.append(gap)
            now += gap
        assert sum(gaps) / len(gaps) == pytest.approx(0.25, rel=0.1)

    def test_constant_rate_never_touches_the_thinning_stream(self):
        arrivals = OpenArrivals(4.0)
        streams = RandomStreams(7)
        for _ in range(10):
            arrivals.next_interarrival(streams, now=0.0)
        assert THINNING_STREAM not in streams._generators

    def test_thinning_reproduces_the_time_varying_rate(self):
        """Arrival counts track the jump: ~5/s before, ~25/s after."""
        arrivals = OpenArrivals(JumpSchedule(5.0, 25.0, jump_time=50.0))
        streams = RandomStreams(11)
        now, before, after = 0.0, 0, 0
        while now < 100.0:
            now += arrivals.next_interarrival(streams, now)
            if now < 50.0:
                before += 1
            elif now < 100.0:
                after += 1
        assert before == pytest.approx(250, rel=0.2)
        assert after == pytest.approx(1250, rel=0.2)

    def test_thinning_is_deterministic_given_the_seed(self):
        def draws(seed):
            arrivals = OpenArrivals(SinusoidSchedule(10.0, 6.0, period=3.0))
            streams = RandomStreams(seed)
            now, out = 0.0, []
            for _ in range(50):
                gap = arrivals.next_interarrival(streams, now)
                out.append(gap)
                now += gap
            return out

        assert draws(5) == draws(5)
        assert draws(5) != draws(6)

    def test_clamped_evaluations_counts_negative_rate_instants(self):
        arrivals = OpenArrivals(SinusoidSchedule(2.0, 10.0, period=4.0))
        streams = RandomStreams(13)
        now = 0.0
        for _ in range(200):
            now += arrivals.next_interarrival(streams, now)
        assert arrivals.clamped_evaluations > 0

    def test_clamp_counter_does_not_break_config_equality(self):
        used = OpenArrivals(SinusoidSchedule(2.0, 10.0, period=4.0))
        streams = RandomStreams(13)
        now = 0.0
        for _ in range(50):
            now += used.next_interarrival(streams, now)
        fresh = OpenArrivals(SinusoidSchedule(2.0, 10.0, period=4.0))
        assert used.clamped_evaluations > 0
        assert used == fresh
        assert hash(used) == hash(fresh)


class TestPartlyOpenSessions:
    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError, match="session_alpha"):
            PartlyOpenArrivals(5.0, session_alpha=0.0)
        with pytest.raises(ValueError, match="session bounds"):
            PartlyOpenArrivals(5.0, min_session=0)
        with pytest.raises(ValueError, match="session bounds"):
            PartlyOpenArrivals(5.0, min_session=10, max_session=4)
        with pytest.raises(ValueError, match="session_think_time"):
            PartlyOpenArrivals(5.0, session_think_time=-0.1)

    def test_sizes_stay_inside_the_configured_bounds(self):
        arrivals = PartlyOpenArrivals(5.0, session_alpha=1.2,
                                      min_session=2, max_session=9)
        streams = RandomStreams(17)
        sizes = [arrivals.session_size(streams) for _ in range(2000)]
        assert min(sizes) == 2
        assert 2 < max(sizes) <= 9

    def test_heavier_tail_with_smaller_alpha(self):
        def mean_size(alpha):
            arrivals = PartlyOpenArrivals(5.0, session_alpha=alpha,
                                          min_session=1, max_session=50)
            streams = RandomStreams(19)
            return sum(arrivals.session_size(streams) for _ in range(5000)) / 5000.0

        assert mean_size(0.8) > mean_size(2.5)

    def test_degenerate_bounds_still_consume_one_draw(self):
        """min == max short-circuits the inverse CDF but keeps the draw
        discipline, so widening the bounds later never shifts the stream."""
        arrivals = PartlyOpenArrivals(5.0, min_session=3, max_session=3)
        streams = RandomStreams(23)
        assert arrivals.session_size(streams) == 3
        reference = RandomStreams(23)
        reference.uniform(SESSION_SIZE_STREAM, 0.0, 1.0)
        assert (streams.uniform(SESSION_SIZE_STREAM, 0.0, 1.0)
                == reference.uniform(SESSION_SIZE_STREAM, 0.0, 1.0))

    def test_inverse_cdf_matches_a_hand_computed_point(self):
        arrivals = PartlyOpenArrivals(5.0, session_alpha=1.5,
                                      min_session=1, max_session=50)

        class Fixed:
            def uniform(self, name, low, high):
                return 0.9

        expected = 1.0 / (1.0 - 0.9 * (1.0 - (1.0 / 50.0) ** 1.5)) ** (1.0 / 1.5)
        assert arrivals.session_size(Fixed()) == int(math.floor(expected))


class TestConfigurationSemantics:
    def test_equality_and_hash_by_configuration(self):
        a = PartlyOpenArrivals(JumpSchedule(2.0, 8.0, jump_time=3.0),
                               session_alpha=1.5, max_session=20)
        b = PartlyOpenArrivals(JumpSchedule(2.0, 8.0, jump_time=3.0),
                               session_alpha=1.5, max_session=20)
        c = PartlyOpenArrivals(JumpSchedule(2.0, 8.0, jump_time=3.0),
                               session_alpha=2.0, max_session=20)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert OpenArrivals(5.0) != PartlyOpenArrivals(5.0)

    def test_arrival_processes_pickle(self):
        for arrivals in (ClosedArrivals(), OpenArrivals(5.0),
                         PartlyOpenArrivals(SinusoidSchedule(10.0, 4.0, period=2.0),
                                            session_think_time=0.05)):
            assert pickle.loads(pickle.dumps(arrivals)) == arrivals

    def test_closed_arrivals_have_no_source_interarrival(self):
        with pytest.raises(NotImplementedError):
            ClosedArrivals().next_interarrival(RandomStreams(1), 0.0)


class TestClosedEquivalence:
    def test_explicit_closed_arrivals_match_none_bitwise(self):
        """``arrivals=ClosedArrivals()`` is the *same* system as
        ``arrivals=None`` — identical trajectory, not merely similar."""
        default = TransactionSystem(small_params())
        default.run(until=10.0)
        explicit = TransactionSystem(small_params(), arrivals=ClosedArrivals())
        explicit.run(until=10.0)
        assert explicit.metrics.commits == default.metrics.commits
        assert explicit.metrics.restarts == default.metrics.restarts
        assert (explicit.metrics.response_times.total
                == default.metrics.response_times.total)
        assert explicit.metrics.p99_response_time == default.metrics.p99_response_time


class TestOpenSystemRuns:
    def test_open_source_commits_and_reports_percentiles(self):
        system = TransactionSystem(small_params(),
                                   arrivals=OpenArrivals(20.0))
        system.run(until=10.0)
        assert system.metrics.commits > 0
        assert system.metrics.shed == 0
        p95 = system.metrics.p95_response_time
        p99 = system.metrics.p99_response_time
        assert 0.0 < p95 <= p99

    def test_open_runs_are_deterministic_given_the_seed(self):
        def run():
            system = TransactionSystem(
                small_params(seed=9),
                arrivals=PartlyOpenArrivals(6.0, session_think_time=0.01))
            system.run(until=10.0)
            return (system.metrics.commits, system.metrics.submitted,
                    system.metrics.p95_response_time)

        assert run() == run()

    def test_session_bursts_submit_more_than_their_session_count(self):
        """Partly-open sources multiply arrivals by the session size."""
        open_system = TransactionSystem(small_params(), arrivals=OpenArrivals(6.0))
        open_system.run(until=10.0)
        partly = TransactionSystem(
            small_params(),
            arrivals=PartlyOpenArrivals(6.0, session_alpha=1.0, min_session=2,
                                        max_session=30))
        partly.run(until=10.0)
        assert partly.metrics.submitted > open_system.metrics.submitted

    def test_open_arrivals_leave_the_closed_streams_untouched(self):
        """The source draws only on its dedicated stream names."""
        streams = RandomStreams(31)
        arrivals = PartlyOpenArrivals(SinusoidSchedule(8.0, 4.0, period=2.0))
        now = 0.0
        for _ in range(20):
            now += arrivals.next_interarrival(streams, now)
            arrivals.session_size(streams)
        assert set(streams._generators) == {
            INTERARRIVAL_STREAM, THINNING_STREAM, SESSION_SIZE_STREAM}
