"""Tests for the Parabola Approximation (PA) controller."""

import math

import pytest

from repro.analytic.synthetic import DynamicOptimumScenario, SyntheticSystem
from repro.core.parabola import ParabolaController, RecoveryPolicy
from repro.core.types import IntervalMeasurement
from repro.tp.workload import ConstantSchedule, JumpSchedule, SinusoidSchedule


def measurement(throughput, concurrency, limit, time=1.0):
    return IntervalMeasurement(
        time=time,
        interval_length=1.0,
        throughput=throughput,
        mean_concurrency=concurrency,
        concurrency_at_sample=concurrency,
        current_limit=limit,
        commits=int(throughput),
    )


def feed_parabola(controller, loads, a0=0.0, a1=4.0, a2=-0.05):
    """Feed noiseless samples of a known parabola to the controller."""
    for index, load in enumerate(loads):
        performance = a0 + a1 * load + a2 * load * load
        controller.update(measurement(performance, load, controller.current_limit,
                                      time=float(index + 1)))


class TestValidation:
    def test_negative_probe_rejected(self):
        with pytest.raises(ValueError):
            ParabolaController(probe_amplitude=-1.0)

    def test_negative_recovery_step_rejected(self):
        with pytest.raises(ValueError):
            ParabolaController(recovery_step=-1.0)

    def test_min_samples_at_least_three(self):
        with pytest.raises(ValueError):
            ParabolaController(min_samples=2)


class TestEstimation:
    def test_estimated_optimum_matches_true_vertex(self):
        controller = ParabolaController(initial_limit=10, upper_bound=100,
                                        probe_amplitude=0.0, forgetting=1.0)
        # true optimum of 4n - 0.05 n^2 is at n = 40
        feed_parabola(controller, [5, 15, 25, 35, 45, 55, 30, 20, 50, 40])
        assert controller.estimated_optimum() == pytest.approx(40.0, abs=1.0)

    def test_coefficients_in_unscaled_coordinates(self):
        controller = ParabolaController(initial_limit=10, upper_bound=100,
                                        probe_amplitude=0.0, forgetting=1.0)
        feed_parabola(controller, [5, 15, 25, 35, 45, 55, 30, 20, 50, 40],
                      a0=2.0, a1=4.0, a2=-0.05)
        a0, a1, a2 = controller.coefficients
        assert a0 == pytest.approx(2.0, abs=1.5)
        assert a1 == pytest.approx(4.0, abs=0.1)
        assert a2 == pytest.approx(-0.05, abs=0.005)

    def test_predicted_performance(self):
        controller = ParabolaController(initial_limit=10, upper_bound=100,
                                        probe_amplitude=0.0, forgetting=1.0)
        feed_parabola(controller, [5, 15, 25, 35, 45, 55, 30, 20, 50, 40])
        assert controller.predicted_performance(40.0) == pytest.approx(
            4 * 40 - 0.05 * 1600, rel=0.05)

    def test_estimated_optimum_none_for_upward_parabola(self):
        controller = ParabolaController(initial_limit=10, upper_bound=100,
                                        probe_amplitude=0.0, forgetting=1.0)
        # convex data: performance grows quadratically with load
        feed_parabola(controller, [5, 15, 25, 35, 45, 55], a0=0.0, a1=0.0, a2=0.1)
        assert controller.estimated_optimum() is None
        assert controller.upward_parabola_events > 0


class TestControlLaw:
    def test_moves_towards_the_vertex(self):
        controller = ParabolaController(initial_limit=10, upper_bound=100,
                                        probe_amplitude=0.0, max_move=100.0, forgetting=1.0)
        feed_parabola(controller, [5, 15, 25, 35, 45, 55, 30, 20, 50, 40])
        assert controller.current_limit == pytest.approx(40.0, abs=2.0)

    def test_max_move_limits_single_step(self):
        controller = ParabolaController(initial_limit=5, upper_bound=500,
                                        probe_amplitude=0.0, max_move=3.0,
                                        recovery_step=3.0, forgetting=1.0)
        limits = [controller.current_limit]
        for index, load in enumerate([5, 15, 25, 35, 45, 55]):
            performance = 4.0 * load - 0.05 * load * load
            controller.update(measurement(performance, load, controller.current_limit,
                                          time=float(index + 1)))
            limits.append(controller.current_limit)
        # no single move (bootstrap, recovery or fit-driven) exceeds 3
        steps = [abs(b - a) for a, b in zip(limits, limits[1:])]
        assert max(steps) <= 3.0 + 1e-9

    def test_probe_alternates_sign(self):
        controller = ParabolaController(initial_limit=10, upper_bound=200,
                                        probe_amplitude=4.0, max_move=500.0, forgetting=1.0)
        feed_parabola(controller, [5, 15, 25, 35, 45, 55, 30, 20, 50, 40])
        limit_a = controller.current_limit
        controller.update(measurement(4 * 40 - 0.05 * 1600, 40.0, limit_a, time=20.0))
        limit_b = controller.current_limit
        controller.update(measurement(4 * 40 - 0.05 * 1600, 40.0, limit_b, time=21.0))
        limit_c = controller.current_limit
        # successive settled limits oscillate around the vertex
        assert (limit_b - limit_a) * (limit_c - limit_b) < 0

    def test_bootstrap_probes_before_enough_samples(self):
        controller = ParabolaController(initial_limit=10, upper_bound=100, min_samples=3)
        first = controller.update(measurement(20.0, 10.0, 10.0))
        assert first > 10.0

    def test_respects_bounds(self):
        controller = ParabolaController(initial_limit=10, lower_bound=5, upper_bound=50,
                                        probe_amplitude=10.0, forgetting=1.0)
        feed_parabola(controller, [10, 20, 30, 40, 48, 12, 44, 18])
        for load in (5, 45, 25, 35):
            performance = 4 * load - 0.05 * load * load
            limit = controller.update(measurement(performance, load, controller.current_limit))
            assert 5 <= limit <= 50


class TestRecoveryPolicies:
    def feed_convex(self, controller):
        feed_parabola(controller, [5, 15, 25, 35, 45, 55], a0=0.0, a1=0.0, a2=0.1)

    def test_hold_keeps_previous_limit(self):
        controller = ParabolaController(initial_limit=10, upper_bound=100,
                                        recovery=RecoveryPolicy.HOLD,
                                        probe_amplitude=0.0, forgetting=1.0)
        self.feed_convex(controller)
        limit_before = controller.current_limit
        controller.update(measurement(0.1 * 60 * 60, 60.0, limit_before))
        assert controller.current_limit == pytest.approx(limit_before)

    def test_bound_falls_to_lower_bound(self):
        controller = ParabolaController(initial_limit=10, lower_bound=3, upper_bound=100,
                                        recovery=RecoveryPolicy.BOUND,
                                        probe_amplitude=0.0, forgetting=1.0)
        self.feed_convex(controller)
        assert controller.current_limit == 3

    def test_reset_clears_the_estimator(self):
        controller = ParabolaController(initial_limit=10, upper_bound=100,
                                        recovery=RecoveryPolicy.RESET,
                                        probe_amplitude=0.0, forgetting=1.0)
        self.feed_convex(controller)
        assert controller.estimator.samples <= 1

    def test_step_recovery_moves_the_limit(self):
        controller = ParabolaController(initial_limit=10, upper_bound=100,
                                        recovery=RecoveryPolicy.STEP, recovery_step=5.0,
                                        probe_amplitude=0.0, forgetting=1.0)
        limit_before = controller.current_limit
        self.feed_convex(controller)
        assert controller.current_limit != limit_before
        assert controller.upward_parabola_events > 0

    def test_reset_method_restores_initial_state(self):
        controller = ParabolaController(initial_limit=10, upper_bound=100)
        feed_parabola(controller, [5, 15, 25, 35])
        controller.reset()
        assert controller.current_limit == 10
        assert controller.estimator.samples == 0
        assert controller.upward_parabola_events == 0


class TestClosedLoopOnSyntheticPlant:
    def test_converges_to_static_optimum(self):
        scenario = DynamicOptimumScenario.constant(position=60.0, height=100.0)
        controller = ParabolaController(initial_limit=10, lower_bound=2, upper_bound=200,
                                        probe_amplitude=3.0, forgetting=0.9, max_move=30.0)
        plant = SyntheticSystem(scenario, controller, interval=1.0, noise_std=0.5, seed=5)
        plant.run(300)
        settled = plant.trace.limits[-50:]
        assert sum(settled) / len(settled) == pytest.approx(60.0, abs=12.0)

    def test_tracks_jump_of_the_optimum(self):
        scenario = DynamicOptimumScenario(
            position=JumpSchedule(50.0, 150.0, jump_time=200.0),
            height=ConstantSchedule(100.0))
        controller = ParabolaController(initial_limit=20, lower_bound=2, upper_bound=400,
                                        probe_amplitude=4.0, forgetting=0.85, max_move=40.0)
        plant = SyntheticSystem(scenario, controller, interval=1.0, noise_std=1.0, seed=6)
        plant.run(600)
        before = plant.trace.limits[150:200]
        after = plant.trace.limits[-80:]
        assert sum(before) / len(before) == pytest.approx(50.0, abs=20.0)
        assert sum(after) / len(after) == pytest.approx(150.0, abs=35.0)

    def test_tracks_sinusoidal_optimum(self):
        scenario = DynamicOptimumScenario(
            position=SinusoidSchedule(mean=80.0, amplitude=30.0, period=200.0),
            height=ConstantSchedule(100.0))
        controller = ParabolaController(initial_limit=40, lower_bound=2, upper_bound=300,
                                        probe_amplitude=4.0, forgetting=0.85, max_move=25.0)
        plant = SyntheticSystem(scenario, controller, interval=1.0, noise_std=1.0, seed=7)
        plant.run(600)
        # after the initial transient the threshold stays inside the swept band
        settled = plant.trace.limits[100:]
        assert all(25.0 <= limit <= 135.0 for limit in settled)
        # and it actually moves with the optimum rather than freezing
        assert max(settled) - min(settled) > 20.0
