"""Queueing resources for the simulation kernel.

Two resource types are provided:

* :class:`Resource` -- an FCFS multi-server station.  The transaction
  processing model uses one instance with capacity ``m`` for the homogeneous
  multiprocessor ("m CPUs serving a shared queue") and, when disk contention
  is modelled explicitly, one instance per disk.
* :class:`Store` -- an unbounded FIFO of items with blocking ``get``.  Used
  by the admission gate's FCFS waiting queue and in tests.

Both follow the request/release protocol: ``request()`` returns an event that
succeeds once the resource is granted; the holder must later call
``release(request)``.  Requests may be cancelled before they are granted,
which is how interrupted transactions withdraw from queues without leaking
capacity.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, SimulationError, Simulator


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "granted", "cancelled", "enqueued_at", "granted_at")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        self.granted = False
        self.cancelled = False
        self.enqueued_at = resource.sim.now
        self.granted_at: Optional[float] = None

    def cancel(self) -> None:
        """Withdraw the request.

        If it was already granted the slot is released; if it is still
        waiting it is marked cancelled and skipped when it reaches the head
        of the queue.  Cancelling twice is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.granted:
            self.resource.release(self)
        else:
            self.resource._drop_waiting(self)


class Resource:
    """First-come-first-served multi-server resource.

    ``capacity`` servers are available; requests beyond the capacity wait in
    an FCFS queue.  The resource keeps the occupancy and waiting statistics
    needed by the measurement layer (utilisation, mean queue length).
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self._users: set[Request] = set()
        self._waiting: Deque[Request] = deque()
        # statistics: time integrals of busy servers and queue length
        self._last_change = sim.now
        self._busy_time_integral = 0.0
        self._queue_time_integral = 0.0
        self.total_requests = 0
        self.total_wait_time = 0.0

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of servers currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a server."""
        return len(self._waiting)

    # ------------------------------------------------------------------
    def request(self) -> Request:
        """Claim a server; the returned event succeeds once granted."""
        self._accumulate()
        req = Request(self)
        self.total_requests += 1
        if len(self._users) < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return the server held by ``req`` and grant the next waiter."""
        if req not in self._users:
            raise SimulationError(
                f"release of a request that does not hold {self.name!r} "
                "(double release or foreign request)"
            )
        self._accumulate()
        self._users.discard(req)
        req.granted = False
        self._grant_waiters()

    def _drop_waiting(self, req: Request) -> None:
        """Remove a cancelled request from the waiting queue."""
        self._accumulate()
        try:
            self._waiting.remove(req)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def _grant(self, req: Request) -> None:
        req.granted = True
        req.granted_at = self.sim.now
        self.total_wait_time += req.granted_at - req.enqueued_at
        self._users.add(req)
        req.succeed(req)

    def _grant_waiters(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            req = self._waiting.popleft()
            if req.cancelled:
                continue
            self._grant(req)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _accumulate(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_change
        if elapsed > 0:
            self._busy_time_integral += elapsed * len(self._users)
            self._queue_time_integral += elapsed * len(self._waiting)
            self._last_change = now

    def utilisation(self, since: float = 0.0) -> float:
        """Mean fraction of busy servers since ``since`` (default run start)."""
        self._accumulate()
        horizon = self.sim.now - since
        if horizon <= 0:
            return 0.0
        return self._busy_time_integral / (horizon * self.capacity)

    def mean_queue_length(self, since: float = 0.0) -> float:
        """Time-averaged number of waiting requests."""
        self._accumulate()
        horizon = self.sim.now - since
        if horizon <= 0:
            return 0.0
        return self._queue_time_integral / horizon

    def reset_statistics(self) -> None:
        """Forget accumulated statistics (used at the end of warm-up)."""
        self._accumulate()
        self._busy_time_integral = 0.0
        self._queue_time_integral = 0.0
        self.total_requests = 0
        self.total_wait_time = 0.0
        self._last_change = self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name!r} capacity={self.capacity} "
            f"in_use={self.in_use} queued={self.queue_length}>"
        )


class Store:
    """Unbounded FIFO of items with blocking retrieval.

    ``put`` never blocks.  ``get`` returns an event that succeeds with the
    oldest item once one is available.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    @property
    def size(self) -> int:
        """Number of items currently stored."""
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        """Number of get() calls still blocked."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest blocked getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Event that succeeds with the next item (FIFO order)."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Store {self.name!r} size={self.size} waiting={self.waiting_getters}>"
