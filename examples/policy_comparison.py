#!/usr/bin/env python3
"""Compare every load-control policy on a workload that shifts twice.

Section 1 of the paper lists the alternatives to feedback control: doing
nothing, a fixed administrator-tuned bound, and theoretically derived rules
of thumb.  This example runs all of them — plus the paper's IS and PA
controllers — through a workload whose transaction size changes twice.

The policies are independent simulation cells, so the example delegates to
the parallel runner: ``--workers N`` fans the policies out over worker
processes (identical results to serial), and ``--replicates R`` runs each
policy R times with independent replicate seeds and reports mean ± 95% CI.
It also demonstrates two optional features of the framework:

* the outer control loop (automatic sizing of the measurement interval), and
* the displacement policy (aborting transactions when the threshold drops
  far below the current load).

Run with:  python examples/policy_comparison.py [--quick] [--workers N] [--replicates R]
"""

import argparse

from repro.core import DisplacementPolicy, MeasurementIntervalTuner, VictimCriterion
from repro.experiments import ExperimentScale, default_system_params
from repro.experiments.report import format_aggregate_table, format_table
from repro.runner import (
    KIND_TRACKING,
    ControllerSpec,
    RunSpec,
    SweepSpec,
    run_sweep,
    tracking_results,
)
from repro.tp.workload import StepSchedule


def policies():
    return {
        "no control": ControllerSpec.make("no_control"),
        "fixed limit (20)": ControllerSpec.make("fixed", limit=20),
        "Tay rule": ControllerSpec.make("tay"),
        "Iyer rule": ControllerSpec.make("iyer"),
        "Incremental Steps": ControllerSpec.make(
            "incremental_steps", initial_limit=20, beta=1.0, gamma=5, delta=10,
            min_step=2.0, lower_bound=2),
        "Parabola Approximation": ControllerSpec.make(
            "parabola", initial_limit=20, forgetting=0.9, probe_amplitude=3.0,
            max_move=30.0, lower_bound=2),
    }


def build_sweep_spec(params, scale, scenario):
    """One tracking cell per policy, plus the displacement + outer-loop demo."""
    all_policies = policies()
    cells = [
        RunSpec(kind=KIND_TRACKING, cell_id=f"policies/{name}", params=params,
                scale=scale, controller=spec, scenario=scenario, label=name)
        for name, spec in all_policies.items()
    ]
    special = "PA + displacement + outer loop"
    cells.append(RunSpec(
        kind=KIND_TRACKING,
        cell_id=f"policies/{special}",
        params=params,
        scale=scale,
        # same PA parameterisation as the plain row, so the comparison
        # isolates the displacement + outer-loop effect
        controller=all_policies["Parabola Approximation"],
        scenario=scenario,
        label=special,
        displacement=DisplacementPolicy(criterion=VictimCriterion.YOUNGEST, hysteresis=5),
        interval_tuner=MeasurementIntervalTuner(target_departures=150, min_interval=0.5,
                                                max_interval=10.0),
    ))
    return SweepSpec(name="policy_comparison", cells=tuple(cells))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a shorter simulation")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = serial; results are identical)")
    parser.add_argument("--replicates", type=int, default=1,
                        help="replicates per policy (>1 reports mean ± 95%% CI)")
    arguments = parser.parse_args()
    scale = ExperimentScale.smoke() if arguments.quick else ExperimentScale.benchmark()
    horizon = scale.tracking_horizon

    params = default_system_params(seed=19).with_changes(n_terminals=250)
    # transaction size: 6 accesses, then 12, then back to 4
    schedule = StepSchedule(initial=6, steps=[(horizon / 3, 12), (2 * horizon / 3, 4)])
    scenario = ("accesses", schedule)

    print(f"Workload: k = 6 -> 12 (at t={horizon / 3:.0f}s) -> 4 (at t={2 * horizon / 3:.0f}s), "
          f"{params.n_terminals} terminals, horizon {horizon:.0f}s, "
          f"workers={arguments.workers}, replicates={arguments.replicates}\n")

    sweep = build_sweep_spec(params, scale, scenario)
    result = run_sweep(sweep, workers=arguments.workers,
                       replicates=max(1, arguments.replicates))

    rows = []
    for name, tracking in tracking_results(result).items():
        rows.append([
            name,
            tracking.total_commits,
            tracking.total_commits / horizon,
            tracking.mean_response_time,
            tracking.restart_ratio,
        ])
        print(f"  finished: {name:<32} commits={tracking.total_commits}")

    print()
    print(format_table(
        ["policy", "commits", "throughput [txn/s]", "mean response [s]", "restarts/commit"],
        rows))

    if result.replicates > 1:
        print(f"\nReplicated summaries ({result.replicates} replicates, mean ± 95% CI):")
        print(format_aggregate_table(result.aggregates))

    print("\nThe static policies depend on how well their single setting matches the")
    print("current workload; the feedback controllers adapt to every shift without")
    print("knowing the workload parameters at all (Section 1, option 4).")


if __name__ == "__main__":
    main()
