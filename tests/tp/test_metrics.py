"""Tests for run metrics and interval accounting."""

import pytest

from repro.cc.base import AbortReason
from repro.sim.engine import Simulator
from repro.tp.metrics import IntervalCounters, RunMetrics


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def metrics(sim):
    return RunMetrics(sim)


class TestRunTotals:
    def test_initially_empty(self, metrics):
        assert metrics.commits == 0
        assert metrics.total_aborts == 0
        assert metrics.throughput() == 0.0
        assert metrics.restart_ratio == 0.0
        assert metrics.conflict_ratio == 0.0

    def test_commit_recording(self, sim, metrics):
        sim._now = 10.0
        metrics.record_commit(response_time=2.0, conflicts=0)
        metrics.record_commit(response_time=4.0, conflicts=1)
        assert metrics.commits == 2
        assert metrics.mean_response_time() == pytest.approx(3.0)
        assert metrics.throughput() == pytest.approx(0.2)
        assert metrics.conflict_ratio == pytest.approx(0.5)

    def test_abort_recording_by_reason(self, metrics):
        metrics.record_abort(AbortReason.CERTIFICATION)
        metrics.record_abort(AbortReason.CERTIFICATION)
        metrics.record_abort(AbortReason.DEADLOCK)
        metrics.record_abort(AbortReason.DISPLACEMENT)
        assert metrics.aborts_by_reason[AbortReason.CERTIFICATION] == 2
        assert metrics.aborts_by_reason[AbortReason.DEADLOCK] == 1
        assert metrics.aborts_by_reason[AbortReason.DISPLACEMENT] == 1
        assert metrics.total_aborts == 4
        # displacement does not count as a restart (no re-run follows inside
        # the system), certification failures and deadlocks do
        assert metrics.restarts == 3

    def test_restart_ratio(self, metrics):
        metrics.record_commit(1.0)
        metrics.record_abort(AbortReason.CERTIFICATION)
        metrics.record_abort(AbortReason.CERTIFICATION)
        assert metrics.restart_ratio == pytest.approx(2.0)

    def test_throughput_window_bound_by_reset(self, sim, metrics):
        """Regression: reset() binds the rate window to the reset instant.

        Pre-fix, ``throughput(since=)`` left the window to the caller, so
        the post-reset commit count was silently divided by a horizon that
        included time before the reset (the default ``since=0.0`` here
        would yield 2 / 20 = 0.1 instead of 2 / 10 = 0.2).
        """
        sim._now = 10.0
        metrics.record_commit(1.0)  # pre-reset commit, must not count
        metrics.reset()
        assert metrics.measured_from == 10.0
        sim._now = 20.0
        metrics.record_commit(1.0)
        metrics.record_commit(1.0)
        assert metrics.throughput() == pytest.approx(0.2)

    def test_concurrency_time_average(self, sim, metrics):
        metrics.record_concurrency(0)
        sim._now = 5.0
        metrics.record_concurrency(10)
        sim._now = 10.0
        assert metrics.mean_concurrency() == pytest.approx(5.0)

    def test_reset_clears_counters(self, sim, metrics):
        metrics.record_commit(1.0)
        metrics.record_abort(AbortReason.CERTIFICATION)
        sim._now = 5.0
        metrics.reset()
        assert metrics.commits == 0
        assert metrics.total_aborts == 0
        assert metrics.response_times.count == 0


class TestIntervalAccounting:
    def test_snapshot_returns_and_resets(self, sim, metrics):
        metrics.record_commit(2.0, conflicts=1)
        metrics.record_abort(AbortReason.CERTIFICATION, conflicts=2)
        interval = metrics.snapshot_interval()
        assert interval.commits == 1
        assert interval.aborts == 1
        assert interval.conflicts == 3
        assert interval.mean_response_time() == pytest.approx(2.0)
        # after the snapshot the next interval starts empty
        follow_up = metrics.snapshot_interval()
        assert follow_up.commits == 0
        assert follow_up.aborts == 0

    def test_interval_start_advances(self, sim, metrics):
        assert metrics.interval_start == 0.0
        sim._now = 7.0
        metrics.snapshot_interval()
        assert metrics.interval_start == 7.0

    def test_run_totals_survive_snapshots(self, metrics):
        metrics.record_commit(1.0)
        metrics.snapshot_interval()
        metrics.record_commit(1.0)
        metrics.snapshot_interval()
        assert metrics.commits == 2

    def test_empty_interval_counters(self):
        counters = IntervalCounters()
        assert counters.mean_response_time() == 0.0


def _quantile_state(estimator):
    """The complete internal state of a P² estimator, for exact comparison."""
    return (estimator.probability, estimator.count,
            tuple(estimator._heights), tuple(estimator._positions),
            tuple(estimator._desired))


def _observable_state(metrics, now):
    """Every run-level quantity a caller can read off a RunMetrics."""
    return {
        "commits": metrics.commits,
        "submitted": metrics.submitted,
        "restarts": metrics.restarts,
        "conflicts": metrics.conflicts,
        "aborts_by_reason": dict(metrics.aborts_by_reason),
        "shed": metrics.shed,
        "shed_by_tenant": dict(metrics.shed_by_tenant),
        "commits_by_tenant": dict(metrics.commits_by_tenant),
        "response_stats": (metrics.response_times.count,
                           metrics.response_times.total,
                           metrics.response_times.maximum),
        "waiting_stats": (metrics.waiting_times.count,
                          metrics.waiting_times.total),
        "p95": _quantile_state(metrics.response_p95),
        "p99": _quantile_state(metrics.response_p99),
        "tenant_p95": {tenant: _quantile_state(estimator)
                       for tenant, estimator in metrics.tenant_response_p95.items()},
        "tenant_p99": {tenant: _quantile_state(estimator)
                       for tenant, estimator in metrics.tenant_response_p99.items()},
        "measured_from": metrics.measured_from,
        "throughput": metrics.throughput(),
        "mean_response_time": metrics.mean_response_time(),
        "mean_concurrency": metrics.mean_concurrency(),
        "mean_queue": metrics.admission_queue.mean(now),
    }


class TestResetEquivalence:
    """``reset()`` must leave the object indistinguishable from a fresh
    RunMetrics built at the reset instant — the warm-up discard contract
    that every measured window (and the SLO percentiles) relies on."""

    def _event_batch(self, seed, start, count=120):
        """A deterministic, varied event sequence starting at ``start``."""
        import math

        events = []
        t = start
        for i in range(count):
            t += 0.05 + 0.04 * math.sin(seed + i)
            tenant = ("steady", "burst", "")[i % 3]
            kind = i % 7
            if kind < 4:
                events.append(("commit", t, 0.1 + 0.3 * ((seed * i) % 11) / 11.0,
                               i % 2, tenant))
            elif kind == 4:
                events.append(("abort", t,
                               AbortReason.CERTIFICATION if i % 2 else AbortReason.DEADLOCK))
            elif kind == 5:
                events.append(("shed", t, tenant))
            else:
                events.append(("gauge", t, float(i % 9), float(i % 4)))
            events.append(("submit", t))
            events.append(("admission", t, 0.01 * (i % 5)))
        return events

    def _apply(self, metrics, sim, events):
        for event in events:
            sim._now = event[1]
            if event[0] == "commit":
                metrics.record_commit(event[2], conflicts=event[3], tenant=event[4])
            elif event[0] == "abort":
                metrics.record_abort(event[2])
            elif event[0] == "shed":
                metrics.record_shed(event[2])
            elif event[0] == "gauge":
                metrics.record_concurrency(event[2])
                metrics.record_admission_queue(event[3])
            elif event[0] == "submit":
                metrics.record_submission()
            elif event[0] == "admission":
                metrics.record_admission(event[2])

    def test_reset_equals_fresh_metrics_replaying_the_same_events(self):
        warmup = self._event_batch(seed=3, start=0.0)
        measured = self._event_batch(seed=5, start=10.0)

        sim = Simulator()
        survivor = RunMetrics(sim)
        self._apply(survivor, sim, warmup)
        sim._now = 10.0
        carried_concurrency = survivor.concurrency.current
        carried_queue = survivor.admission_queue.current
        survivor.reset()
        self._apply(survivor, sim, measured)

        fresh_sim = Simulator()
        fresh_sim._now = 10.0
        fresh = RunMetrics(fresh_sim)
        # the documented carryover: reset preserves the *current* gauge
        # levels (transactions in flight do not vanish at the window edge)
        fresh.record_concurrency(carried_concurrency)
        fresh.record_admission_queue(carried_queue)
        fresh.concurrency.reset(10.0)
        fresh.admission_queue.reset(10.0)
        self._apply(fresh, fresh_sim, measured)

        now = sim.now
        fresh_sim._now = now
        assert _observable_state(survivor, now) == _observable_state(fresh, now)

    def test_reset_forgets_warmup_quantiles(self):
        """The SLO estimators restart: extreme warm-up latencies must not
        leak into the measured percentiles."""
        sim = Simulator()
        metrics = RunMetrics(sim)
        for _ in range(50):
            metrics.record_commit(100.0)        # pathological warm-up
        metrics.reset()
        for _ in range(50):
            metrics.record_commit(0.2)
        assert metrics.p95_response_time < 1.0
        assert metrics.p99_response_time < 1.0
        assert metrics.commits_by_tenant == {"": 50}
