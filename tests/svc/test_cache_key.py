"""Property tests for the content-addressed cache key.

:func:`~repro.runner.specs.run_spec_fingerprint` must behave like a
content hash of the *semantics* of a cell: equal specs hash equal, any
single-field perturbation that changes what would be simulated changes
the key, and the key is a pure function of the spec — stable across
process boundaries, worker counts, and a real localhost cluster.  These
properties are exactly what makes serving a repeated cell from the cache
sound: a collision would silently return the wrong experiment, and an
instability would silently re-simulate everything.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.cluster import launch_local_cluster
from repro.experiments.config import ExperimentScale
from repro.runner.executor import make_executor
from repro.runner.registry import build_sweep
from repro.runner.specs import (
    SPEC_FINGERPRINT_VERSION,
    run_spec_fingerprint,
)
from repro.svc.cache import ResultCache
from repro.tp.workload import JumpSchedule


def _cells(scenario):
    return build_sweep(scenario, scale=ExperimentScale.smoke()).cells


@pytest.fixture(scope="module")
def thrashing_cells():
    return _cells("thrashing")


@pytest.fixture(scope="module")
def base_cell(thrashing_cells):
    return thrashing_cells[0]


# ----------------------------------------------------------------------
# equality: same content, same key
# ----------------------------------------------------------------------
class TestEquality:
    def test_independent_builds_hash_equal(self, thrashing_cells):
        rebuilt = _cells("thrashing")
        assert [run_spec_fingerprint(cell) for cell in thrashing_cells] == \
            [run_spec_fingerprint(cell) for cell in rebuilt]

    def test_a_copy_hashes_equal(self, base_cell):
        clone = dataclasses.replace(base_cell)
        assert clone is not base_cell
        assert run_spec_fingerprint(clone) == run_spec_fingerprint(base_cell)

    def test_every_golden_cell_has_a_distinct_key(self):
        fingerprints = []
        for scenario in ("thrashing", "cc_compare", "probe_calibration",
                         "open_diurnal", "fig13_is_jump"):
            fingerprints += [run_spec_fingerprint(c) for c in _cells(scenario)]
        assert len(set(fingerprints)) == len(fingerprints)


# ----------------------------------------------------------------------
# sensitivity: any semantic perturbation changes the key
# ----------------------------------------------------------------------
def _perturb_seed(cell):
    return dataclasses.replace(
        cell, params=dataclasses.replace(cell.params, seed=cell.params.seed + 1))


def _perturb_n_terminals(cell):
    return dataclasses.replace(
        cell, params=dataclasses.replace(cell.params,
                                         n_terminals=cell.params.n_terminals + 1))


def _perturb_replicate(cell):
    return dataclasses.replace(cell, replicate=cell.replicate + 1)


def _perturb_horizon(cell):
    return dataclasses.replace(
        cell, scale=dataclasses.replace(
            cell.scale, stationary_horizon=cell.scale.stationary_horizon + 1.0))


PERTURBATIONS = [
    ("seed", _perturb_seed),
    ("n_terminals", _perturb_n_terminals),
    ("replicate", _perturb_replicate),
    ("stationary_horizon", _perturb_horizon),
]


class TestSensitivity:
    @pytest.mark.parametrize("name,perturb", PERTURBATIONS,
                             ids=[name for name, _ in PERTURBATIONS])
    def test_single_field_perturbation_changes_the_key(self, base_cell,
                                                       name, perturb):
        assert run_spec_fingerprint(perturb(base_cell)) != \
            run_spec_fingerprint(base_cell)

    def test_cc_option_changes_the_key(self):
        cell = next(c for c in _cells("cc_compare")
                    if c.cc is not None and c.cc.options)
        perturbed = dataclasses.replace(
            cell, cc=dataclasses.replace(
                cell.cc, options=(("victim_policy", "oldest"),)))
        assert cell.cc.options != perturbed.cc.options
        assert run_spec_fingerprint(perturbed) != run_spec_fingerprint(cell)

    def test_schedule_breakpoint_changes_the_key(self):
        cell = next(c for c in _cells("fig13_is_jump") if c.scenario)
        name, schedule = cell.scenario
        moved = JumpSchedule(before=schedule.before, after=schedule.after,
                             jump_time=schedule.jump_time + 1.0)
        perturbed = dataclasses.replace(cell, scenario=(name, moved))
        assert run_spec_fingerprint(perturbed) != run_spec_fingerprint(cell)

    def test_probe_set_changes_the_key(self):
        cell = next(c for c in _cells("probe_calibration") if c.probes)
        perturbed = dataclasses.replace(cell, probes=cell.probes[:-1])
        assert run_spec_fingerprint(perturbed) != run_spec_fingerprint(cell)

    def test_arrival_model_changes_the_key(self):
        cell = next(c for c in _cells("open_diurnal")
                    if c.arrivals is not None)
        closed = dataclasses.replace(cell, arrivals=None)
        assert run_spec_fingerprint(closed) != run_spec_fingerprint(cell)

    @settings(max_examples=25, deadline=None)
    @given(seed_a=st.integers(min_value=0, max_value=2**31),
           seed_b=st.integers(min_value=0, max_value=2**31))
    def test_keys_collide_exactly_when_seeds_do(self, seed_a, seed_b):
        base = _cells("thrashing")[0]
        cell_a = dataclasses.replace(
            base, params=dataclasses.replace(base.params, seed=seed_a))
        cell_b = dataclasses.replace(
            base, params=dataclasses.replace(base.params, seed=seed_b))
        assert (run_spec_fingerprint(cell_a) == run_spec_fingerprint(cell_b)) \
            == (seed_a == seed_b)


# ----------------------------------------------------------------------
# versioning and uncacheable specs
# ----------------------------------------------------------------------
class TestVersioning:
    def test_fingerprint_version_salts_the_key(self, base_cell, monkeypatch):
        before = run_spec_fingerprint(base_cell)
        import repro.runner.specs as specs

        monkeypatch.setattr(specs, "SPEC_FINGERPRINT_VERSION",
                            SPEC_FINGERPRINT_VERSION + 1)
        assert specs.run_spec_fingerprint(base_cell) != before

    def test_uncacheable_spec_raises_and_cache_returns_none(self, base_cell,
                                                            tmp_path):
        opaque = dataclasses.replace(
            base_cell, controller=lambda params: None)
        with pytest.raises(ValueError):
            run_spec_fingerprint(opaque)
        cache = ResultCache(tmp_path)
        assert cache.key_for(opaque) is None
        assert cache.get(opaque) is None
        assert cache.put(opaque, object()) is None
        assert cache.stats()["uncacheable"] == 1
        assert cache.stats()["hits"] == cache.stats()["misses"] == 0


# ----------------------------------------------------------------------
# stability: the key is a pure function of the spec, everywhere
# ----------------------------------------------------------------------
class TestStability:
    def test_stable_across_worker_counts(self, thrashing_cells):
        expected = [run_spec_fingerprint(cell) for cell in thrashing_cells]
        for workers in (1, 2):
            executor = make_executor(workers)
            try:
                assert executor.execute(run_spec_fingerprint,
                                        thrashing_cells) == expected
            finally:
                if hasattr(executor, "close"):
                    executor.close()

    def test_stable_across_a_two_worker_cluster(self, thrashing_cells):
        expected = [run_spec_fingerprint(cell) for cell in thrashing_cells]
        with launch_local_cluster(workers=2) as cluster:
            assert cluster.execute(run_spec_fingerprint,
                                   thrashing_cells) == expected
