"""Micro-benchmarks of the simulation substrate.

These are conventional pytest-benchmark timings (multiple rounds) of the two
hot paths every experiment exercises: raw event processing in the kernel and
full transaction cycles through the closed model.  They exist so that a
performance regression in the substrate is visible independently of the
(single-shot) figure benchmarks.
"""

from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.tp.params import SystemParams, WorkloadParams
from repro.tp.system import TransactionSystem


def test_kernel_event_throughput(benchmark):
    """Time to process 20k timeout events through the kernel."""

    def run():
        sim = Simulator()

        def ticker():
            for _ in range(20_000):
                yield sim.timeout(0.001)

        sim.process(ticker())
        sim.run(until=100.0)
        return sim.now

    benchmark(run)


def test_resource_contention_throughput(benchmark):
    """Time to push 5k jobs through a 4-server FCFS resource."""

    def run():
        sim = Simulator()
        resource = Resource(sim, capacity=4)
        completed = []

        def worker():
            for _ in range(50):
                request = resource.request()
                yield request
                yield sim.timeout(0.01)
                resource.release(request)
            completed.append(True)

        for _ in range(100):
            sim.process(worker())
        sim.run(until=1e9)
        return len(completed)

    result = benchmark(run)
    assert result == 100


def test_transaction_system_throughput(benchmark):
    """Time to simulate 5 seconds of a small closed transaction system."""
    params = SystemParams(
        n_terminals=50, think_time=0.2, n_cpus=4,
        cpu_init=0.002, cpu_per_access=0.002, cpu_commit=0.002,
        disk_per_access=0.005, disk_commit=0.005, seed=3,
        workload=WorkloadParams(db_size=500, accesses_per_txn=6,
                                query_fraction=0.25, write_fraction=0.5))

    def run():
        system = TransactionSystem(params)
        system.run(until=5.0)
        return system.metrics.commits

    commits = benchmark(run)
    assert commits > 0
