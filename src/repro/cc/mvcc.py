"""Multiversion concurrency control: snapshot isolation.

The paper's load-control results are measured over serializable schemes
(certification and strict 2PL); production engines overwhelmingly run
*multiversion* snapshot schemes instead, where readers never block and the
weaker isolation level trades anomalies for throughput.  This module adds
that sixth point of comparison through the same
:class:`~repro.cc.base.ConcurrencyControl` seam:

* every execution takes a **snapshot** when it begins: the logical commit
  index at that instant.  All reads are served from the snapshot — the
  latest version of each granule committed at or before it — so a read
  *never* blocks and never aborts, no matter what concurrent writers do;
* writes are buffered (the write set) and validated at commit by
  **first-committer-wins**: the transaction commits only if no granule it
  wants to write has a version newer than its snapshot.  A conflict is a
  certification failure (:attr:`~repro.cc.base.AbortReason.CERTIFICATION`),
  resolved the optimistic way — abort and restart;
* on commit the transaction's writes are installed as new versions stamped
  with a fresh commit index.

The versioned store keys versions by the writer's commit index and keeps,
per granule, only the versions some active snapshot can still see (older
versions are garbage-collected against the oldest active snapshot), so
memory stays bounded regardless of run length.

First-committer-wins makes lost updates impossible (two concurrent writers
of one granule cannot both commit) and snapshot reads make long forks and
non-repeatable reads impossible, but **write skew** survives: two
transactions may each read what the other then overwrites and both commit,
because their write sets are disjoint.  The scheme therefore registers
with the declared level ``"snapshot_isolation"`` — the isolation oracle
(:func:`repro.cc.history.check_isolation`) certifies it admits write skew
and nothing worse, instead of demanding full serializability.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.cc.base import AbortReason, ConcurrencyControl
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.tp.transaction import Transaction


class SnapshotIsolation(ConcurrencyControl):
    """Multiversion CC: snapshot reads, first-committer-wins writes."""

    name = "snapshot-isolation"
    multiversion = True

    def __init__(self, sim: Simulator):
        self.sim = sim
        #: logical commit counter; a transaction's snapshot is its value
        #: at begin, and each commit installs versions at the next value
        self._commit_index = 0
        #: granule -> versions as (commit_index, writer txn_id), ascending
        self._versions: Dict[int, List[Tuple[int, int]]] = {}
        #: txn_id -> snapshot commit index of every active execution
        self._snapshots: Dict[int, int] = {}
        # statistics
        self.certifications = 0
        self.certification_failures = 0

    # ------------------------------------------------------------------
    def begin(self, txn: "Transaction") -> None:
        """Take the execution's snapshot: the current commit index."""
        snapshot = self._commit_index
        txn.cc_state["snapshot"] = snapshot
        txn.cc_state["versions_read"] = {}
        self._snapshots[txn.txn_id] = snapshot

    def access(self, txn: "Transaction", item: int, is_write: bool) -> Optional[Event]:
        """Serve the access from the snapshot; never blocks.

        The version read (the writer's txn_id, ``None`` for the initial
        version) is remembered in ``cc_state["versions_read"]`` so the
        history recorder can ask for it via :meth:`observed_version`.
        A write implies a read of the granule in this model, exactly as
        under timestamp certification.
        """
        if is_write:
            txn.write_set.add(item)
            txn.read_set.add(item)
        else:
            txn.read_set.add(item)
        txn.cc_state["versions_read"][item] = self._visible_version(
            item, txn.cc_state["snapshot"])
        return None

    def try_commit(self, txn: "Transaction") -> bool:
        """First-committer-wins: fail if any written granule moved on.

        A granule in the write set with a version newer than the
        transaction's snapshot means a concurrent transaction committed a
        write first; committing over it would lose that update.
        """
        self.certifications += 1
        snapshot = txn.cc_state.get("snapshot")
        if snapshot is None:
            raise RuntimeError(
                f"transaction {txn.txn_id} certified without begin() being called"
            )
        conflicts = 0
        for item in txn.write_set:
            versions = self._versions.get(item)
            if versions and versions[-1][0] > snapshot:
                conflicts += 1
        txn.last_conflicts = conflicts
        if conflicts:
            self.certification_failures += 1
            return False
        return True

    def finish(self, txn: "Transaction") -> None:
        """Install the write set as new versions at a fresh commit index."""
        self._commit_index += 1
        commit_index = self._commit_index
        for item in txn.write_set:
            self._versions.setdefault(item, []).append(
                (commit_index, txn.txn_id))
        self._snapshots.pop(txn.txn_id, None)
        self._collect_garbage()

    def abort(self, txn: "Transaction", reason: AbortReason) -> None:
        """Drop the execution's snapshot; buffered writes never existed."""
        self._snapshots.pop(txn.txn_id, None)

    def active_count(self) -> int:
        """Number of executions between begin() and finish()/abort()."""
        return len(self._snapshots)

    # ------------------------------------------------------------------
    def observed_version(self, txn: "Transaction", item: int) -> Optional[int]:
        """The writer txn_id of the snapshot version ``txn`` read of ``item``."""
        return txn.cc_state["versions_read"].get(item)

    def version_count(self, item: int) -> int:
        """Number of versions currently retained for ``item`` (GC probe)."""
        return len(self._versions.get(item, ()))

    @property
    def failure_fraction(self) -> float:
        """Fraction of certifications that failed so far."""
        if self.certifications == 0:
            return 0.0
        return self.certification_failures / self.certifications

    def reset(self) -> None:
        """Forget every version, snapshot and statistic."""
        self._commit_index = 0
        self._versions.clear()
        self._snapshots.clear()
        self.certifications = 0
        self.certification_failures = 0

    # ------------------------------------------------------------------
    def _visible_version(self, item: int, snapshot: int) -> Optional[int]:
        """Writer of the latest version committed at or before ``snapshot``."""
        versions = self._versions.get(item)
        if not versions:
            return None
        index = bisect_right(versions, snapshot, key=lambda v: v[0])
        if index == 0:
            return None
        return versions[index - 1][1]

    def _collect_garbage(self) -> None:
        """Drop versions no active snapshot can see any more.

        A version is dead once a *newer* version is also at or below every
        active snapshot (and below the next transaction's snapshot, i.e.
        the current commit index — which it always is).  Keeping the
        latest version at or below the oldest active snapshot preserves
        every visible read and the first-committer-wins check, which only
        ever compares against the newest version.
        """
        horizon = min(self._snapshots.values(), default=self._commit_index)
        for item, versions in self._versions.items():
            if len(versions) < 2:
                continue
            cut = bisect_right(versions, horizon, key=lambda v: v[0])
            if cut > 1:
                del versions[:cut - 1]
