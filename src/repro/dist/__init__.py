"""Distributed sweep execution: coordinator, workers, archives.

The paper's evaluation grid is embarrassingly parallel and every cell is a
deterministic function of its picklable spec (PR 1), so scaling beyond one
host is a dispatch problem, not a simulation problem.  This package solves
it with a small TCP protocol:

* :mod:`~repro.dist.protocol` — length-prefixed pickle framing;
* :mod:`~repro.dist.coordinator` — :class:`DistributedExecutor`, serving
  cells from a work queue to connected workers and reassembling results in
  deterministic cell order, re-queueing the in-flight cells of dead
  workers (the sweep completes as long as one worker survives);
* :mod:`~repro.dist.worker` — the cell-executing loop with heartbeats;
* :mod:`~repro.dist.cluster` — :func:`launch_local_cluster`, a
  coordinator plus N localhost subprocess workers for tests and CI;
* :mod:`~repro.dist.archive` — versioned JSON artifacts of replicated
  runs with mean ± confidence-interval summaries.

The determinism contract is unchanged from the in-process executors: for
any worker count, join order, or mid-run worker crash, a sweep's results
are bit-identical to :class:`~repro.runner.executor.SerialExecutor` —
asserted against the golden trajectories in ``tests/dist/``.
"""

from repro.dist.archive import (
    ARCHIVE_FORMAT,
    archive_sweep,
    build_archive,
    format_archive_table,
    load_archive,
    write_archive,
)
from repro.dist.cluster import LocalCluster, launch_local_cluster, spawn_local_workers
from repro.dist.coordinator import DistributedExecutor
from repro.dist.protocol import (
    ConnectionClosed,
    ProtocolError,
    recv_message,
    send_message,
)


def __getattr__(name):
    # lazy: ``python -m repro.dist.worker`` (how local clusters spawn
    # workers) imports this package first, and an eager import of the
    # worker module here would make runpy warn about re-executing it
    if name == "Worker":
        from repro.dist.worker import Worker

        return Worker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ARCHIVE_FORMAT",
    "archive_sweep",
    "build_archive",
    "format_archive_table",
    "load_archive",
    "write_archive",
    "LocalCluster",
    "launch_local_cluster",
    "spawn_local_workers",
    "DistributedExecutor",
    "ConnectionClosed",
    "ProtocolError",
    "recv_message",
    "send_message",
    "Worker",
]
