"""Tests for the Tay mean-value blocking model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.tay import TayModel


class TestValidation:
    def test_db_size_positive(self):
        with pytest.raises(ValueError):
            TayModel(db_size=0, locks_per_txn=5)

    def test_locks_positive(self):
        with pytest.raises(ValueError):
            TayModel(db_size=100, locks_per_txn=0)

    def test_waiting_share_range(self):
        with pytest.raises(ValueError):
            TayModel(db_size=100, locks_per_txn=5, waiting_share=0.0)
        with pytest.raises(ValueError):
            TayModel(db_size=100, locks_per_txn=5, waiting_share=1.5)


class TestBlockingBehaviour:
    def test_no_blocking_with_single_transaction(self):
        model = TayModel(db_size=1000, locks_per_txn=10)
        assert model.conflict_probability(1) == 0.0
        assert model.blocked_transactions(1) == 0.0

    def test_blocking_grows_superlinearly(self):
        model = TayModel(db_size=1000, locks_per_txn=10)
        b_10 = model.blocked_transactions(10)
        b_20 = model.blocked_transactions(20)
        # quadratic growth: doubling n more than doubles b(n)
        assert b_20 > 2.5 * b_10

    def test_blocked_never_exceeds_population(self):
        model = TayModel(db_size=50, locks_per_txn=20)
        for n in (1, 5, 10, 50, 200):
            assert model.blocked_transactions(n) <= n

    def test_active_transactions_positive(self):
        model = TayModel(db_size=1000, locks_per_txn=10)
        for n in (1, 10, 100, 500):
            assert model.active_transactions(n) >= 0.0

    def test_conflict_probability_capped_at_one(self):
        model = TayModel(db_size=10, locks_per_txn=10)
        assert model.conflict_probability(1000) == 1.0

    def test_derivative_exceeds_one_beyond_critical_mpl(self):
        model = TayModel(db_size=1000, locks_per_txn=8)
        critical = model.critical_mpl()
        assert model.blocking_derivative(critical * 0.5) < 1.0
        assert model.blocking_derivative(critical * 1.2) > 1.0

    def test_rule_of_thumb_formula(self):
        model = TayModel(db_size=9000, locks_per_txn=10)
        assert model.rule_of_thumb_mpl() == pytest.approx(1.5 * 9000 / 100)
        assert model.rule_of_thumb_mpl(margin=1.0) == pytest.approx(90.0)

    def test_smaller_transactions_allow_higher_mpl(self):
        small = TayModel(db_size=1000, locks_per_txn=4)
        large = TayModel(db_size=1000, locks_per_txn=16)
        assert small.critical_mpl() > large.critical_mpl()
        assert small.rule_of_thumb_mpl() > large.rule_of_thumb_mpl()

    def test_throughput_curve_shape(self):
        model = TayModel(db_size=500, locks_per_txn=10)
        levels = list(range(1, 200, 5))
        curve = model.throughput_curve(levels)
        peak_index = curve.index(max(curve))
        # the curve rises and eventually falls: the peak is interior
        assert 0 < peak_index < len(curve) - 1

    @given(db_size=st.integers(min_value=100, max_value=100000),
           k=st.integers(min_value=1, max_value=30),
           n=st.floats(min_value=1.0, max_value=1000.0))
    @settings(max_examples=80, deadline=None)
    def test_invariants_property(self, db_size, k, n):
        model = TayModel(db_size=db_size, locks_per_txn=k)
        blocked = model.blocked_transactions(n)
        assert 0.0 <= blocked <= max(0.0, n - 1.0) + 1e-9
        assert 0.0 <= model.conflict_probability(n) <= 1.0
        assert model.active_transactions(n) == pytest.approx(n - blocked)
