"""Optimistic concurrency control with forward validation.

The paper's own simulation uses *backward*-oriented certification
(:mod:`repro.cc.timestamp_cert`): a committing transaction checks its reads
against the writes of transactions that committed since it started.  This
module provides the complementary *forward*-oriented variant (Härder 1984;
Bernstein, Hadzilacos & Goodman 1987, ch. 4): a committing transaction
validates its **write set against the current read sets of the
transactions still in their read phase** and invalidates every overlapping
one — the validator itself always commits (unless it was invalidated by an
earlier committer first).

Differences that matter for the load-control experiments:

* Forward validation is strictly less pessimistic than the backward scheme
  in this model: a running transaction conflicts only if it *already* read
  a granule the committer overwrites.  A read performed after the commit
  simply observes the new state and serialises after the committer, while
  backward certification charges every committed write since the reader's
  start timestamp against it, whenever the read happened.
* Conflicts still surface as aborts + restarts (the invalidated victim
  aborts at its own certification point), so data contention is converted
  into resource contention exactly as Section 7 requires and thrashing
  appears beyond the optimal multiprogramming level — the scheme slots
  into the same analytic reference (:class:`repro.analytic.occ.OccModel`)
  as the backward variant.

The invalidation is *lazy*: a doomed transaction keeps executing until its
own ``try_commit`` and only then aborts.  That is the standard kill-based
forward validation for this kind of abstract model — eager aborts would
need an interrupt channel into the victim's process and would only shift
when the wasted work stops, not whether it happens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.cc.base import AbortReason, ConcurrencyControl
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.tp.transaction import Transaction


class OccForwardValidation(ConcurrencyControl):
    """Forward-oriented optimistic validation (non-blocking CC)."""

    name = "occ-forward-validation"

    def __init__(self, sim: Simulator):
        self.sim = sim
        #: txn_id -> live transaction record (its read set grows in place)
        self._active: Dict[int, "Transaction"] = {}
        #: txn_id -> conflicts charged by committers that invalidated it
        self._invalidated: Dict[int, int] = {}
        # statistics
        self.validations = 0
        self.validation_failures = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def begin(self, txn: "Transaction") -> None:
        """A fresh execution enters its read phase with a clean slate."""
        self._active[txn.txn_id] = txn
        self._invalidated.pop(txn.txn_id, None)

    def access(self, txn: "Transaction", item: int, is_write: bool) -> Optional[Event]:
        """Record the access; optimistic schemes never block."""
        if is_write:
            txn.write_set.add(item)
            # every write implies a read of the granule in this model, so
            # write/write conflicts are caught through the read sets too
            txn.read_set.add(item)
        else:
            txn.read_set.add(item)
        return None

    def try_commit(self, txn: "Transaction") -> bool:
        """Commit unless invalidated; invalidate overlapping readers."""
        self.validations += 1
        charged = self._invalidated.pop(txn.txn_id, None)
        if charged is not None:
            txn.last_conflicts = charged
            self.validation_failures += 1
            return False
        txn.last_conflicts = 0
        if txn.write_set:
            for other_id, other in self._active.items():
                if other_id == txn.txn_id:
                    continue
                overlap = len(txn.write_set & other.read_set)
                if overlap:
                    self.invalidations += 1
                    self._invalidated[other_id] = (
                        self._invalidated.get(other_id, 0) + overlap)
        return True

    def finish(self, txn: "Transaction") -> None:
        """The committed transaction leaves the validator's scope."""
        self._active.pop(txn.txn_id, None)
        self._invalidated.pop(txn.txn_id, None)

    def abort(self, txn: "Transaction", reason: AbortReason) -> None:
        """Abandoned executions leave no shared state behind."""
        self._active.pop(txn.txn_id, None)
        self._invalidated.pop(txn.txn_id, None)

    def active_count(self) -> int:
        """Number of executions between begin() and finish()/abort()."""
        return len(self._active)

    @property
    def failure_fraction(self) -> float:
        """Fraction of validations that failed so far."""
        if self.validations == 0:
            return 0.0
        return self.validation_failures / self.validations

    def reset(self) -> None:
        """Forget all active transactions and statistics."""
        self._active.clear()
        self._invalidated.clear()
        self.validations = 0
        self.validation_failures = 0
        self.invalidations = 0
