"""Versioned JSON archives of replicated sweep runs (mean ± CI tables).

The paper's figures are distributions, not points: the ROADMAP's archival
item asks for replicated registry runs (``replicates >= 10`` at paper
scale) distilled into artifacts that outlive the run.  An archive is one
JSON file per (scenario, scale, replicates) combination:

* ``format`` — the archive format version (:data:`ARCHIVE_FORMAT`);
  :func:`load_archive` refuses versions it does not understand, so a
  format change can never be silently misread;
* run coordinates — scenario name, scale preset, replicates, confidence
  level, cell count;
* one entry per cell with every metric's replicate aggregate: ``mean``,
  sample ``std``, ``ci_half_width``/``ci_lower``/``ci_upper`` and the
  observation ``count``.

Archives contain only aggregate statistics (no trajectories), so even a
paper-scale run with dozens of cells is a few tens of kilobytes.  The
serialisation is deterministic (sorted keys, tagged non-finite floats, no
timestamps): archiving the same run twice produces byte-identical files,
which makes artifacts diffable across commits.

:func:`archive_sweep` is the one-call entry point (used by the
``repro-dist-coordinator --archive`` flag and directly scriptable)::

    from repro.dist.archive import archive_sweep
    path = archive_sweep("fig12_stationary", out_dir="artifacts",
                         scale="paper", replicates=10, workers=4)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.canonical import sanitize as _sanitize

#: bump when the artifact structure changes; load_archive enforces it
ARCHIVE_FORMAT = 1

#: (metric key, column header) pairs of :func:`format_archive_table`
DEFAULT_TABLE_COLUMNS: Sequence[Tuple[str, str]] = (
    ("throughput", "T [txn/s]"),
    ("mean_response_time", "R [s]"),
    ("restart_ratio", "restarts/commit"),
)


# non-finite floats are tagged by repro.canonical.sanitize — the exact
# encoding the golden-trajectory fixtures and the fuzz corpus use, so the
# three artifact families can never drift apart (pinned byte-for-byte by
# tests/svc/test_canonical.py)


def build_archive(result, *, scenario: str, scale_name: str,
                  confidence: float = 0.95) -> dict:
    """Condense a :class:`~repro.runner.api.SweepResult` into archive form."""
    cells = []
    for aggregate in result.aggregates:
        metrics = {}
        for name, summary in aggregate.metrics.items():
            metrics[name] = {
                "mean": summary.mean,
                "std": summary.std,
                "ci_half_width": summary.ci_half_width,
                "ci_lower": summary.lower,
                "ci_upper": summary.upper,
                "count": summary.count,
                "confidence": summary.confidence,
            }
        cells.append({
            "cell_id": aggregate.cell_id,
            "kind": aggregate.kind,
            "label": aggregate.label,
            "replicates": aggregate.count,
            "metrics": metrics,
        })
    return _sanitize({
        "format": ARCHIVE_FORMAT,
        "scenario": scenario,
        "scale": scale_name,
        "replicates": result.replicates,
        "confidence": confidence,
        "n_cells": len(cells),
        "cells": cells,
    })


def archive_filename(scenario: str, scale_name: str, replicates: int) -> str:
    """Canonical artifact name: scenario, scale, replicates, format version."""
    return f"{scenario}__{scale_name}__r{replicates}__v{ARCHIVE_FORMAT}.json"


def write_archive(archive: dict, out_dir) -> Path:
    """Write one archive artifact; returns its path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / archive_filename(archive["scenario"], archive["scale"],
                                      archive["replicates"])
    text = json.dumps(archive, sort_keys=True, indent=1, allow_nan=False)
    path.write_text(text + "\n", encoding="utf-8")
    return path


def load_archive(path) -> dict:
    """Read one artifact back, enforcing the format version."""
    archive = json.loads(Path(path).read_text(encoding="utf-8"))
    version = archive.get("format")
    if version != ARCHIVE_FORMAT:
        raise ValueError(
            f"{path}: archive format {version!r} is not supported "
            f"(this code reads format {ARCHIVE_FORMAT})"
        )
    return archive


def format_archive_table(archive: dict,
                         columns: Optional[Sequence[Tuple[str, str]]] = None,
                         float_format: str = "{:.3f}") -> str:
    """Render an archive as the mean ± CI table its run would have printed."""
    from repro.experiments.report import format_table

    if columns is None:
        columns = DEFAULT_TABLE_COLUMNS
    headers = ["cell", "n"] + [header for _key, header in columns]
    rows = []
    for cell in archive["cells"]:
        row = [cell["cell_id"], cell["replicates"]]
        for key, _header in columns:
            summary = cell["metrics"].get(key)
            if summary is None or not isinstance(summary["mean"], (int, float)):
                row.append("-")
                continue
            mean_text = float_format.format(summary["mean"])
            half_width = summary["ci_half_width"]
            if summary["count"] > 1 and isinstance(half_width, (int, float)) \
                    and half_width > 0:
                row.append(f"{mean_text} ± {float_format.format(half_width)}")
            else:
                row.append(mean_text)
        rows.append(row)
    return format_table(headers, rows, float_format=float_format)


_SCALE_PRESETS = ("smoke", "benchmark", "paper")


def archive_sweep(scenario: str, *, out_dir, scale: str = "paper",
                  replicates: int = 10, workers: int = 0,
                  address: Optional[str] = None, executor=None,
                  confidence: float = 0.95, base_params=None) -> Path:
    """Run a replicated registry sweep and archive it; returns the path.

    ``scale`` is a preset name (``smoke``/``benchmark``/``paper``; the
    ROADMAP's paper-scale default).  Execution is selected exactly as in
    :func:`~repro.runner.api.run_sweep`: in-process (``workers=0``),
    multiprocessing (``workers=N``), a distributed cluster
    (``address="host:port"``), or any ready ``executor``.
    """
    from repro.experiments.config import ExperimentScale
    from repro.runner.api import run_sweep

    if scale not in _SCALE_PRESETS:
        raise ValueError(f"scale must be one of {_SCALE_PRESETS}, got {scale!r}")
    scale_preset = getattr(ExperimentScale, scale)()
    result = run_sweep(scenario, scale=scale_preset, replicates=replicates,
                       workers=workers, address=address, executor=executor,
                       confidence=confidence, base_params=base_params)
    archive = build_archive(result, scenario=scenario, scale_name=scale,
                            confidence=confidence)
    return write_archive(archive, out_dir)
