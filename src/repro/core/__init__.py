"""Adaptive load control — the paper's primary contribution.

The package contains everything needed to close the feedback loop of
Figure 5 in the paper:

* :class:`~repro.core.admission.AdmissionGate` -- the "gate" in front of the
  transaction processing system: admits an arriving transaction only while
  the actual load ``n`` is below the current threshold ``n*``; otherwise the
  transaction waits in an FCFS queue.
* :class:`~repro.core.measurement.MeasurementProcess` -- samples the system
  every measurement interval, builds an
  :class:`~repro.core.types.IntervalMeasurement`, feeds it to a controller
  and enforces the new threshold.
* Controllers:

  - :class:`~repro.core.incremental_steps.IncrementalStepsController` (IS,
    Section 4.1),
  - :class:`~repro.core.parabola.ParabolaController` (PA, Section 4.2),
  - :class:`~repro.core.static.NoControl`,
    :class:`~repro.core.static.FixedLimit` (the Section 1 alternatives),
  - :class:`~repro.core.rules.TayRule`, :class:`~repro.core.rules.IyerRule`
    (the "theoretically derived rules of thumb" of Section 1).

* :class:`~repro.core.displacement.DisplacementPolicy` -- the optional
  enforcement of a lowered threshold by aborting active transactions
  (Section 4.3).
* :class:`~repro.core.outer_loop.MeasurementIntervalTuner` -- the "overlaid,
  outer control loop" of Section 5 that adapts the measurement interval.
"""

from repro.core.admission import AdmissionGate
from repro.core.controller import (
    LoadController,
    effective_utilisation_index,
    inverse_response_time_index,
    throughput_index,
)
from repro.core.displacement import DisplacementPolicy, VictimCriterion
from repro.core.incremental_steps import IncrementalStepsController
from repro.core.measurement import MeasurementProcess
from repro.core.outer_loop import MeasurementIntervalTuner
from repro.core.parabola import ParabolaController, RecoveryPolicy
from repro.core.rls import RecursiveLeastSquares
from repro.core.rules import IyerRule, TayRule
from repro.core.static import FixedLimit, NoControl
from repro.core.types import ControlTrace, IntervalMeasurement

__all__ = [
    "AdmissionGate",
    "LoadController",
    "throughput_index",
    "effective_utilisation_index",
    "inverse_response_time_index",
    "DisplacementPolicy",
    "VictimCriterion",
    "IncrementalStepsController",
    "MeasurementProcess",
    "MeasurementIntervalTuner",
    "ParabolaController",
    "RecoveryPolicy",
    "RecursiveLeastSquares",
    "TayRule",
    "IyerRule",
    "FixedLimit",
    "NoControl",
    "IntervalMeasurement",
    "ControlTrace",
]
