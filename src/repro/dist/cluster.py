"""Localhost clusters: a coordinator plus N subprocess workers in one call.

:func:`launch_local_cluster` is how tests, CI and the scaling benchmark
exercise the *full* network path — real TCP sockets, real worker
processes, real pickle frames — without any deployment machinery:

>>> from repro.dist.cluster import launch_local_cluster
>>> from repro.runner import run_sweep
>>> with launch_local_cluster(workers=2) as cluster:
...     result = run_sweep("fig12_stationary", executor=cluster)

The context manager owns everything: it binds an ephemeral port on
localhost, spawns ``python -m repro.dist.worker`` subprocesses pointed at
it, waits until they have joined, and on exit shuts the executor down and
reaps the processes.  ``fail_after_cells={worker_index: n}`` arms the
worker-side fault injection (die abruptly when accepting cell ``n+1``)
used by the fault-tolerance tests.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

import repro
from repro.dist.coordinator import DistributedExecutor


def _worker_env() -> Dict[str, str]:
    """Subprocess environment in which ``import repro`` resolves to *this*
    checkout, whether or not the package is pip-installed."""
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (package_root + os.pathsep + existing
                             if existing else package_root)
    return env


def spawn_local_workers(address: str, count: int, *,
                        fail_after_cells: Optional[Dict[int, int]] = None,
                        name_prefix: str = "local",
                        connect_retry: float = 30.0) -> List[subprocess.Popen]:
    """Spawn ``count`` worker subprocesses connecting to ``address``."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    processes = []
    for index in range(count):
        argv = [
            sys.executable, "-m", "repro.dist.worker",
            "--connect", address,
            "--name", f"{name_prefix}-{index}",
            "--retry", str(connect_retry),
        ]
        if fail_after_cells is not None and index in fail_after_cells:
            argv += ["--fail-after-cells", str(fail_after_cells[index])]
        processes.append(subprocess.Popen(argv, env=_worker_env()))
    return processes


class LocalCluster:
    """A bound :class:`DistributedExecutor` plus localhost worker processes.

    Implements the executor interface by delegation, so a cluster can be
    passed anywhere an executor is accepted (``run_sweep(executor=...)``).
    Use as a context manager; :attr:`executor` and :attr:`processes` stay
    accessible for assertions (e.g. that an injected crash really killed
    its worker).
    """

    def __init__(self, workers: int = 2, *,
                 heartbeat_timeout: float = 10.0,
                 worker_timeout: float = 120.0,
                 fail_after_cells: Optional[Dict[int, int]] = None,
                 wait_timeout: float = 60.0):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.worker_count = workers
        self.heartbeat_timeout = heartbeat_timeout
        self.worker_timeout = worker_timeout
        self.fail_after_cells = fail_after_cells
        self.wait_timeout = wait_timeout
        self.executor: Optional[DistributedExecutor] = None
        self.processes: List[subprocess.Popen] = []

    # ------------------------------------------------------------------
    def __enter__(self) -> "LocalCluster":
        self.executor = DistributedExecutor(
            "127.0.0.1:0",
            heartbeat_timeout=self.heartbeat_timeout,
            worker_timeout=self.worker_timeout,
        )
        try:
            self.processes = spawn_local_workers(
                self.executor.bound_address, self.worker_count,
                fail_after_cells=self.fail_after_cells,
            )
            self.executor.wait_for_workers(self.worker_count,
                                           timeout=self.wait_timeout)
        except BaseException:
            self._shutdown()
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        self._shutdown()

    def _shutdown(self) -> None:
        if self.executor is not None:
            self.executor.close()
        for process in self.processes:
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                process.kill()
                process.wait()

    # ------------------------------------------------------------------
    # executor interface by delegation
    # ------------------------------------------------------------------
    def map(self, function, items):
        """Stream ordered results from the cluster (see the executor)."""
        return self._require_executor().map(function, items)

    def execute(self, function, items):
        """Run every item over the cluster and return the ordered results."""
        return self._require_executor().execute(function, items)

    @property
    def bound_address(self) -> str:
        """The coordinator's actual ``host:port``."""
        return self._require_executor().bound_address

    def _require_executor(self) -> DistributedExecutor:
        if self.executor is None:
            raise RuntimeError("the cluster is not running; use it as a context manager")
        return self.executor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self.executor is None else self.bound_address
        return f"LocalCluster(workers={self.worker_count}, {state})"


def launch_local_cluster(workers: int = 2, **options) -> LocalCluster:
    """Coordinator + ``workers`` localhost subprocess workers (see module doc)."""
    return LocalCluster(workers=workers, **options)
