"""Tests for system and workload parameter records."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tp.params import SystemParams, WorkloadParams


class TestWorkloadParams:
    def test_defaults_are_valid(self):
        params = WorkloadParams()
        assert params.db_size > params.accesses_per_txn

    def test_db_size_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkloadParams(db_size=0)

    def test_accesses_bounded_by_db_size(self):
        with pytest.raises(ValueError):
            WorkloadParams(db_size=10, accesses_per_txn=11)

    def test_accesses_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkloadParams(accesses_per_txn=0)

    def test_query_fraction_range(self):
        with pytest.raises(ValueError):
            WorkloadParams(query_fraction=1.2)
        with pytest.raises(ValueError):
            WorkloadParams(query_fraction=-0.1)

    def test_write_fraction_range(self):
        with pytest.raises(ValueError):
            WorkloadParams(write_fraction=2.0)

    def test_with_changes_returns_new_object(self):
        params = WorkloadParams()
        changed = params.with_changes(accesses_per_txn=12)
        assert changed.accesses_per_txn == 12
        assert params.accesses_per_txn != 12
        assert changed is not params

    def test_with_changes_validates(self):
        params = WorkloadParams(db_size=100)
        with pytest.raises(ValueError):
            params.with_changes(accesses_per_txn=1000)

    def test_frozen(self):
        params = WorkloadParams()
        with pytest.raises(AttributeError):
            params.db_size = 10


class TestSystemParams:
    def test_defaults_are_valid(self):
        params = SystemParams()
        assert params.n_terminals >= 1
        assert params.n_cpus >= 1

    def test_terminals_must_be_positive(self):
        with pytest.raises(ValueError):
            SystemParams(n_terminals=0)

    def test_cpus_must_be_positive(self):
        with pytest.raises(ValueError):
            SystemParams(n_cpus=0)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            SystemParams(think_time=-1.0)
        with pytest.raises(ValueError):
            SystemParams(disk_per_access=-0.1)
        with pytest.raises(ValueError):
            SystemParams(restart_delay=-0.5)

    def test_cpu_demand_per_execution(self):
        params = SystemParams(cpu_init=0.01, cpu_per_access=0.002, cpu_commit=0.004,
                              workload=WorkloadParams(accesses_per_txn=5))
        assert params.cpu_demand_per_execution == pytest.approx(0.01 + 5 * 0.002 + 0.004)

    def test_disk_demand_per_execution(self):
        params = SystemParams(disk_per_access=0.02, disk_commit=0.01,
                              workload=WorkloadParams(accesses_per_txn=4))
        assert params.disk_demand_per_execution == pytest.approx(4 * 0.02 + 0.01)

    def test_max_cpu_throughput(self):
        params = SystemParams(n_cpus=4, cpu_init=0.0, cpu_per_access=0.01, cpu_commit=0.0,
                              workload=WorkloadParams(accesses_per_txn=10))
        assert params.max_cpu_throughput == pytest.approx(4 / 0.1)

    def test_saturation_mpl_exceeds_cpu_count(self):
        params = SystemParams()
        assert params.saturation_mpl() >= params.n_cpus

    def test_with_changes_nested_workload(self):
        params = SystemParams()
        changed = params.with_changes(workload=params.workload.with_changes(accesses_per_txn=3))
        assert changed.workload.accesses_per_txn == 3

    @given(k=st.integers(min_value=1, max_value=50),
           cpus=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_derived_quantities_consistent_property(self, k, cpus):
        params = SystemParams(n_cpus=cpus, workload=WorkloadParams(db_size=1000, accesses_per_txn=k))
        assert params.cpu_demand_per_execution > 0
        assert params.max_cpu_throughput == pytest.approx(
            cpus / params.cpu_demand_per_execution
        )
        # saturation MPL is the level that keeps all CPUs busy, so it cannot
        # be below the number of CPUs
        assert params.saturation_mpl() >= cpus
