"""Cell-identity error context shared by every fan-out executor.

A worker crash deep inside a multi-hour sweep used to surface as a bare
``multiprocessing.pool`` traceback with no indication of *which* cell died.
The parallel and the distributed executor therefore run every cell through
:func:`run_with_cell_context`, which re-raises any failure as a
:class:`CellExecutionError` naming the failing cell's full identity
(cell id, kind, label, offered load, seed, replicate) — enough to re-run
exactly that cell serially with
:func:`~repro.runner.cells.execute_run_spec` under a debugger.

The error is deliberately flat (a message string plus the cell id): it must
survive pickling across process and network boundaries, where exception
causes and traceback objects do not.  The serial executor is left
unwrapped on purpose — there the original exception unwinds directly into
the caller's stack and is already debuggable.
"""

from __future__ import annotations

import traceback


class CellExecutionError(RuntimeError):
    """A cell of a sweep failed; the message names the cell's identity."""

    def __init__(self, message: str, cell_id: str = ""):
        super().__init__(message)
        self.cell_id = cell_id

    def __reduce__(self):
        # exceptions pickle through their constructor args; carry cell_id
        # explicitly so it survives process and network hops
        return (type(self), (self.args[0] if self.args else "", self.cell_id))


def describe_item(item) -> str:
    """A human-readable identity of one executor work item.

    :class:`~repro.runner.specs.RunSpec`-shaped items (anything with a
    ``cell_id``) are described by their cell coordinates; other items fall
    back to a truncated ``repr``.
    """
    cell_id = getattr(item, "cell_id", None)
    if cell_id is None:
        text = repr(item)
        return text if len(text) <= 200 else text[:197] + "..."
    details = []
    kind = getattr(item, "kind", "")
    if kind:
        details.append(f"kind={kind}")
    label = getattr(item, "label", "")
    if label:
        details.append(f"label={label!r}")
    params = getattr(item, "params", None)
    if params is not None:
        details.append(f"N={getattr(params, 'n_terminals', '?')}")
        details.append(f"seed={getattr(params, 'seed', '?')}")
    details.append(f"replicate={getattr(item, 'replicate', 0)}")
    return f"cell {cell_id!r} ({', '.join(details)})"


def run_with_cell_context(function, item):
    """Run ``function(item)``, re-raising failures with the cell identity."""
    try:
        return function(item)
    except CellExecutionError:
        raise
    except Exception as exc:
        detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
        raise CellExecutionError(
            f"{describe_item(item)} failed: {detail}",
            cell_id=str(getattr(item, "cell_id", "")),
        ) from exc


class CellErrorContext:
    """Picklable callable adapter applying :func:`run_with_cell_context`.

    The parallel executor maps this over its pool instead of the bare cell
    function; the distributed worker calls :func:`run_with_cell_context`
    directly.  Both therefore report failures through the same
    :class:`CellExecutionError` path.
    """

    def __init__(self, function):
        self.function = function

    def __call__(self, item):
        return run_with_cell_context(self.function, item)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellErrorContext({self.function!r})"
