"""Distributed-executor scaling: cells/sec versus localhost worker count.

Runs the ``fig12_stationary`` sweep through a real coordinator + worker
cluster — TCP sockets, subprocess workers, pickle frames — for 1, 2 and 4
workers, and reports the measured throughput in cells per second.  On a
many-core host the speedup approaches the worker count (the cells are
independent, minutes-long simulations); on a small CI box the numbers
mostly document the dispatch overhead.  Either way, every configuration's
results are asserted bit-identical to the serial executor — the scaling
lever never costs determinism.

Scale follows ``REPRO_BENCH_SCALE`` like every other benchmark; worker
counts are fixed at {1, 2, 4} (the ``REPRO_BENCH_WORKERS`` variable
controls the *multiprocessing* benchmarks, not this cluster sweep).
"""

import time

import pytest
from conftest import run_once

from repro.dist.cluster import launch_local_cluster
from repro.runner import SerialExecutor, execute_run_spec
from repro.runner.registry import build_sweep

SCENARIO = "fig12_stationary"

#: (scale, spec, serial results) — computed once per session; keyed by the
#: scale's value (a frozen dataclass), not its identity
_serial_cache = None


def _serial_reference(scale):
    global _serial_cache
    if _serial_cache is None or _serial_cache[0] != scale:
        spec = build_sweep(SCENARIO, scale=scale)
        _serial_cache = (scale, spec,
                         SerialExecutor().execute(execute_run_spec, spec.cells))
    return _serial_cache[1], _serial_cache[2]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_dist_scaling(benchmark, scale, workers):
    spec, serial = _serial_reference(scale)

    def experiment():
        with launch_local_cluster(workers=workers) as cluster:
            started = time.monotonic()
            results = cluster.execute(execute_run_spec, spec.cells)
            return results, time.monotonic() - started

    results, elapsed = run_once(benchmark, experiment)

    cells_per_sec = len(results) / elapsed if elapsed > 0 else float("inf")
    print()
    print(f"dist scaling — {SCENARIO}, {len(spec.cells)} cells, "
          f"{workers} worker(s): {elapsed:.2f}s, {cells_per_sec:.2f} cells/s")
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["n_cells"] = len(spec.cells)
    benchmark.extra_info["cells_per_sec"] = round(cells_per_sec, 3)

    # determinism contract: bit-identical to serial at every worker count
    assert [r.cell_id for r in results] == [r.cell_id for r in serial]
    for left, right in zip(serial, results):
        assert left.metrics == right.metrics, left.cell_id
