"""Tests for the deadlock-avoiding 2PL variants: wound-wait and wait-die.

Both schemes ride the shared :class:`~repro.cc.two_phase_locking.LockingScheme`
machinery and differ from the detector only in conflict resolution, so
these tests focus on exactly that: who is sacrificed, when the sacrifice
is delivered, and that priorities persist across restarts (the
starvation-freedom argument).
"""

import pytest

from repro.cc.base import AbortReason, TransactionAborted
from repro.cc.two_phase_locking import (
    LockingScheme,
    TwoPhaseLocking,
    WaitDieLocking,
    WoundWaitLocking,
)
from repro.sim.engine import Simulator
from repro.tp.transaction import Transaction, TransactionClass


def make_txn(txn_id, items, writes=()):
    flags = tuple(item in writes for item in items)
    cls = TransactionClass.UPDATER if any(flags) else TransactionClass.QUERY
    return Transaction(
        txn_id=txn_id,
        terminal_id=0,
        txn_class=cls,
        items=tuple(items),
        write_flags=flags,
    )


@pytest.fixture
def sim():
    return Simulator()


class TestSharedMachinery:
    """The family really is one machine with three decision rules."""

    @pytest.mark.parametrize("scheme_class",
                             [TwoPhaseLocking, WoundWaitLocking, WaitDieLocking])
    def test_every_variant_is_a_locking_scheme(self, sim, scheme_class):
        assert isinstance(scheme_class(sim), LockingScheme)

    @pytest.mark.parametrize("scheme_class",
                             [TwoPhaseLocking, WoundWaitLocking, WaitDieLocking])
    def test_shared_grant_path_is_identical(self, sim, scheme_class):
        """Compatible requests never reach the conflict resolution at all."""
        cc = scheme_class(sim)
        first = make_txn(1, [10])
        second = make_txn(2, [10])
        cc.begin(first)
        cc.begin(second)
        assert cc.access(first, 10, is_write=False) is None
        assert cc.access(second, 10, is_write=False) is None
        assert set(cc.holders_of(10)) == {1, 2}
        assert cc.lock_requests == 2
        assert cc.lock_waits == 0

    def test_base_class_has_no_conflict_resolution(self, sim):
        cc = LockingScheme(sim)
        writer = make_txn(1, [5], writes=[5])
        blocked = make_txn(2, [5], writes=[5])
        cc.begin(writer)
        cc.begin(blocked)
        assert cc.access(writer, 5, is_write=True) is None
        with pytest.raises(NotImplementedError):
            cc.access(blocked, 5, is_write=True)


class TestWoundWait:
    def test_younger_requester_waits_for_older_holder(self, sim):
        cc = WoundWaitLocking(sim)
        older = make_txn(1, [7], writes=[7])
        younger = make_txn(2, [7], writes=[7])
        cc.begin(older)
        cc.begin(younger)
        assert cc.access(older, 7, is_write=True) is None
        wait = cc.access(younger, 7, is_write=True)
        assert wait is not None and not wait.triggered
        assert cc.wounds == 0

    def test_youngest_requester_waits_behind_queue_without_wounding(self, sim):
        """Age is first-begin order; the youngest wounds nobody, it queues."""
        cc = WoundWaitLocking(sim)
        holder = make_txn(1, [7], writes=[7])
        middle = make_txn(3, [7], writes=[7])
        youngest = make_txn(2, [7], writes=[7])
        for txn in (holder, middle, youngest):  # priorities 0, 1, 2
            cc.begin(txn)
        assert cc.access(holder, 7, is_write=True) is None
        assert cc.access(middle, 7, is_write=True) is not None
        wait = cc.access(youngest, 7, is_write=True)
        assert wait is not None and not wait.triggered
        assert cc.wounds == 0
        assert cc.blocked_count == 2

    def test_wound_fails_the_blocked_victims_wait_event(self, sim):
        cc = WoundWaitLocking(sim)
        oldest = make_txn(1, [9], writes=[9])
        holder = make_txn(2, [9], writes=[9])
        cc.begin(oldest)
        cc.begin(holder)
        # the younger txn holds, the older one is still filling its cart
        assert cc.access(holder, 9, is_write=True) is None
        victim_wait = None
        # holder (younger) now blocks on a second granule held by nobody —
        # make it wait behind the oldest on granule 11 instead
        assert cc.access(oldest, 11, is_write=True) is None
        victim_wait = cc.access(holder, 11, is_write=True)
        assert victim_wait is not None
        # now the oldest wants granule 9: holder is younger -> wounded, and
        # since it is blocked the wound fails its wait event immediately
        wait = cc.access(oldest, 9, is_write=True)
        assert wait is not None  # the victim still holds 9 until it aborts
        assert victim_wait.triggered and not victim_wait.ok
        with pytest.raises(TransactionAborted) as aborted:
            _ = victim_wait.value
        assert aborted.value.reason is AbortReason.WOUND
        assert cc.wounds == 1

    def test_wound_of_running_victim_is_delivered_at_next_access(self, sim):
        cc = WoundWaitLocking(sim)
        older = make_txn(1, [5], writes=[5])
        younger = make_txn(2, [5], writes=[5])
        cc.begin(older)
        cc.begin(younger)
        # younger acquires first (it begun later but requests first)
        assert cc.access(younger, 5, is_write=True) is None
        wait = cc.access(older, 5, is_write=True)
        assert wait is not None
        assert cc.wounds == 1  # running victim: marked, not yet delivered
        with pytest.raises(TransactionAborted) as aborted:
            cc.access(younger, 6, is_write=False)
        assert aborted.value.reason is AbortReason.WOUND
        cc.abort(younger, AbortReason.WOUND)
        # the victim's release grants the wounder
        assert wait.triggered and wait.ok

    def test_wounded_victim_reaching_commit_is_allowed_to_finish(self, sim):
        cc = WoundWaitLocking(sim)
        older = make_txn(1, [5], writes=[5])
        younger = make_txn(2, [5], writes=[5])
        cc.begin(older)
        cc.begin(younger)
        assert cc.access(younger, 5, is_write=True) is None
        wait = cc.access(older, 5, is_write=True)
        assert cc.wounds == 1
        # commit immunity: no further access, so the wound is never delivered
        assert cc.try_commit(younger) is True
        cc.finish(younger)
        assert wait.triggered and wait.ok
        # ... and a fresh execution of the same terminal slot is innocent
        cc.begin(younger)
        assert cc.access(younger, 6, is_write=False) is None

    def test_restarted_victim_keeps_its_priority(self, sim):
        cc = WoundWaitLocking(sim)
        older = make_txn(1, [5], writes=[5])
        younger = make_txn(2, [5], writes=[5])
        cc.begin(older)
        cc.begin(younger)
        first_priority = cc.priority_of(2)
        assert cc.access(younger, 5, is_write=True) is None
        cc.access(older, 5, is_write=True)  # wounds the younger holder
        with pytest.raises(TransactionAborted):
            cc.access(younger, 6, is_write=False)
        cc.abort(younger, AbortReason.WOUND)
        cc.begin(younger)  # restart of the same transaction
        assert cc.priority_of(2) == first_priority
        # a commit retires the priority for good
        assert cc.try_commit(older) or True
        cc.finish(older)
        assert cc.priority_of(1) is None

    def test_holder_that_also_waits_for_an_upgrade_is_wounded_once(self, sim):
        """A victim reachable both as holder and as queued upgrader counts
        as ONE blocker — one wound, not two (regression: _blockers_of
        used to return it twice)."""
        cc = WoundWaitLocking(sim)
        old = make_txn(1, [4], writes=[4])
        peer = make_txn(2, [4])
        upgrader = make_txn(3, [4], writes=[4])
        for txn in (old, peer, upgrader):  # priorities 0, 1, 2
            cc.begin(txn)
        assert cc.access(peer, 4, is_write=False) is None
        assert cc.access(upgrader, 4, is_write=False) is None
        # the youngest queues for an S->X upgrade behind the older peer
        upgrade_wait = cc.access(upgrader, 4, is_write=True)
        assert upgrade_wait is not None
        assert cc.wounds == 0
        # the oldest wants X: wounds the peer (running -> marked) and the
        # upgrader (blocked -> failed) — exactly one wound each
        wait = cc.access(old, 4, is_write=True)
        assert wait is not None
        assert cc.wounds == 2
        assert upgrade_wait.triggered and not upgrade_wait.ok

    def test_wounding_queued_victim_regrants_cleared_queue(self, sim):
        """An older requester never waits behind wounded younger waiters."""
        cc = WoundWaitLocking(sim)
        reader = make_txn(1, [8])
        young_writer = make_txn(3, [8], writes=[8])
        old_writer = make_txn(2, [8], writes=[8])
        cc.begin(reader)        # priority 0
        cc.begin(old_writer)    # priority 1 (txn_id 2)
        cc.begin(young_writer)  # priority 2 (txn_id 3)
        assert cc.access(reader, 8, is_write=False) is None
        young_wait = cc.access(young_writer, 8, is_write=True)
        assert young_wait is not None
        # the old writer wounds the queued younger writer AND the holding
        # reader is older (priority 0), so the old writer enqueues behind it
        old_wait = cc.access(old_writer, 8, is_write=True)
        assert old_wait is not None
        assert young_wait.triggered and not young_wait.ok
        # reader commits -> the old writer (now head of queue) is granted
        cc.finish(reader)
        assert old_wait.triggered and old_wait.ok


class TestWaitDie:
    def test_older_requester_waits(self, sim):
        cc = WaitDieLocking(sim)
        older = make_txn(1, [7], writes=[7])
        younger = make_txn(2, [7], writes=[7])
        cc.begin(older)
        cc.begin(younger)
        assert cc.access(younger, 7, is_write=True) is None
        wait = cc.access(older, 7, is_write=True)
        assert wait is not None and not wait.triggered
        assert cc.deaths == 0

    def test_younger_requester_dies_immediately(self, sim):
        cc = WaitDieLocking(sim)
        older = make_txn(1, [7], writes=[7])
        younger = make_txn(2, [7], writes=[7])
        cc.begin(older)
        cc.begin(younger)
        assert cc.access(older, 7, is_write=True) is None
        with pytest.raises(TransactionAborted) as aborted:
            cc.access(younger, 7, is_write=True)
        assert aborted.value.reason is AbortReason.DIE
        assert cc.deaths == 1
        # nothing was enqueued: the holder's release grants nobody
        cc.abort(younger, AbortReason.DIE)
        cc.finish(older)
        assert cc.blocked_count == 0

    def test_death_considers_queued_waiters_too(self, sim):
        """FCFS: a requester younger than an already-queued waiter dies."""
        cc = WaitDieLocking(sim)
        holder = make_txn(3, [7], writes=[7])
        oldest = make_txn(1, [7], writes=[7])
        middle = make_txn(2, [7], writes=[7])
        cc.begin(oldest)   # priority 0
        cc.begin(middle)   # priority 1
        cc.begin(holder)   # priority 2
        assert cc.access(holder, 7, is_write=True) is None
        # oldest is older than the holder -> waits
        assert cc.access(oldest, 7, is_write=True) is not None
        # middle is older than the holder but YOUNGER than the queued
        # oldest; waiting would put an old->young edge behind a young->old
        # one, so it dies
        with pytest.raises(TransactionAborted) as aborted:
            cc.access(middle, 7, is_write=True)
        assert aborted.value.reason is AbortReason.DIE

    def test_restarted_victim_ages_into_waiting(self, sim):
        cc = WaitDieLocking(sim)
        older = make_txn(1, [7], writes=[7])
        younger = make_txn(2, [7], writes=[7])
        cc.begin(older)
        cc.begin(younger)
        assert cc.access(older, 7, is_write=True) is None
        with pytest.raises(TransactionAborted):
            cc.access(younger, 7, is_write=True)
        cc.abort(younger, AbortReason.DIE)
        # the older commits; on restart the victim keeps priority 1 and is
        # now the oldest transaction alive -> it waits for (gets) the lock
        cc.finish(older)
        cc.begin(younger)
        assert cc.priority_of(2) == 1
        assert cc.access(younger, 7, is_write=True) is None

    def test_upgrade_deadlock_is_impossible(self, sim):
        """Two S-holders both upgrading: the younger dies, no cycle forms."""
        cc = WaitDieLocking(sim)
        older = make_txn(1, [4], writes=[4])
        younger = make_txn(2, [4], writes=[4])
        cc.begin(older)
        cc.begin(younger)
        assert cc.access(older, 4, is_write=False) is None
        assert cc.access(younger, 4, is_write=False) is None
        wait = cc.access(older, 4, is_write=True)  # upgrade: waits (older)
        assert wait is not None
        with pytest.raises(TransactionAborted) as aborted:
            cc.access(younger, 4, is_write=True)   # upgrade: dies (younger)
        assert aborted.value.reason is AbortReason.DIE
        cc.abort(younger, AbortReason.DIE)
        assert wait.triggered and wait.ok  # the survivor got its X lock


class TestWoundWaitUpgradeDeadlock:
    def test_upgrade_deadlock_is_resolved_by_the_wound_mark(self, sim):
        """Two S-holders both upgrading: the wound mark kills the younger."""
        cc = WoundWaitLocking(sim)
        older = make_txn(1, [4], writes=[4])
        younger = make_txn(2, [4], writes=[4])
        cc.begin(older)
        cc.begin(younger)
        assert cc.access(older, 4, is_write=False) is None
        assert cc.access(younger, 4, is_write=False) is None
        wait = cc.access(older, 4, is_write=True)  # upgrade: wounds + waits
        assert wait is not None
        assert cc.wounds == 1
        with pytest.raises(TransactionAborted) as aborted:
            cc.access(younger, 4, is_write=True)   # the wound is delivered
        assert aborted.value.reason is AbortReason.WOUND
        cc.abort(younger, AbortReason.WOUND)
        assert wait.triggered and wait.ok


@pytest.mark.parametrize("scheme_class", [WoundWaitLocking, WaitDieLocking])
class TestResetAndBookkeeping:
    def test_reset_clears_priorities_and_stats(self, sim, scheme_class):
        cc = scheme_class(sim)
        txn = make_txn(1, [3], writes=[3])
        cc.begin(txn)
        assert cc.access(txn, 3, is_write=True) is None
        cc.reset()
        assert cc.priority_of(1) is None
        assert cc.active_count() == 0
        assert cc.lock_requests == 0
        fresh = make_txn(9, [3], writes=[3])
        cc.begin(fresh)
        assert cc.priority_of(9) == 0
        assert cc.access(fresh, 3, is_write=True) is None

    def test_displacement_retires_the_priority(self, sim, scheme_class):
        """Conflict victims age; displaced transactions leave the table
        (regression: a never-resubmitted displaced txn leaked its entry)."""
        cc = scheme_class(sim)
        displaced = make_txn(1, [3], writes=[3])
        victim = make_txn(2, [5], writes=[5])
        cc.begin(displaced)
        cc.begin(victim)
        cc.abort(displaced, AbortReason.DISPLACEMENT)
        assert cc.priority_of(1) is None
        reason = (AbortReason.WOUND if scheme_class is WoundWaitLocking
                  else AbortReason.DIE)
        cc.abort(victim, reason)
        assert cc.priority_of(2) == 1  # the conflict victim keeps aging

    def test_active_count_tracks_holders_and_waiters(self, sim, scheme_class):
        cc = scheme_class(sim)
        holder = make_txn(1, [3], writes=[3])
        waiter = make_txn(2, [3], writes=[3])
        cc.begin(holder)
        cc.begin(waiter)
        assert cc.access(holder, 3, is_write=True) is None
        assert cc.active_count() == 1
        # the younger waits under wound-wait; under wait-die it would die,
        # so only assert the blocking case where it exists
        if scheme_class is WoundWaitLocking:
            assert cc.access(waiter, 3, is_write=True) is not None
            assert cc.active_count() == 2
