"""Aggregating replicated runs into mean ± confidence-interval summaries.

A single simulation run is one sample from the distribution the paper's
figures actually plot; replicated runs (same cell, independent replicate
seeds) turn a point estimate into a mean with a Student-t confidence
interval.  This module condenses the :class:`~repro.runner.cells.CellResult`
stream an executor produces into one :class:`CellAggregate` per cell.

No SciPy: the two-sided Student-t critical values for the supported
confidence levels are tabulated for up to 30 degrees of freedom, continue
through the standard df = 40/60/120 textbook breakpoints with linear
interpolation in ``1/df`` (the t quantile is nearly linear in ``1/df``, so
the interpolation error is below 0.001 everywhere), and only reach the
normal quantile in the df → ∞ limit.  Falling back to z straight after
df = 30 — the previous behaviour — made the intervals anticonservative by
up to ~4% for df 31–120.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.runner.cells import CellResult

#: two-sided Student-t critical values, indexed [confidence][df - 1]
_T_TABLE: Dict[float, Tuple[float, ...]] = {
    0.90: (6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
           1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
           1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
           1.701, 1.699, 1.697),
    0.95: (12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
           2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
           2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
           2.048, 2.045, 2.042),
    0.99: (63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
           3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
           2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
           2.763, 2.756, 2.750),
}

#: textbook breakpoints beyond the dense table, indexed [confidence][df]
_T_BREAKPOINTS: Dict[float, Tuple[Tuple[int, float], ...]] = {
    0.90: ((40, 1.684), (60, 1.671), (120, 1.658)),
    0.95: ((40, 2.021), (60, 2.000), (120, 1.980)),
    0.99: ((40, 2.704), (60, 2.660), (120, 2.617)),
}

#: normal quantiles, the df -> infinity limit of the t distribution
_Z_VALUES: Dict[float, float] = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom.

    Exact (to three decimals) for df <= 30 and at the df = 40/60/120
    breakpoints; linearly interpolated in ``1/df`` between breakpoints and
    between df = 120 and the normal quantile at infinity, so the value
    decreases monotonically toward z instead of jumping below the true
    quantile as soon as the dense table runs out.
    """
    if df < 1:
        raise ValueError(f"df must be >= 1, got {df}")
    table = _T_TABLE.get(confidence)
    if table is None:
        raise ValueError(
            f"confidence must be one of {sorted(_T_TABLE)}, got {confidence}"
        )
    if df <= len(table):
        return table[df - 1]
    # walk the (df, value) knots; interpolate linearly in 1/df between them
    previous_df, previous_value = len(table), table[-1]
    for knot_df, knot_value in _T_BREAKPOINTS[confidence]:
        if df <= knot_df:
            weight = ((1.0 / df - 1.0 / knot_df)
                      / (1.0 / previous_df - 1.0 / knot_df))
            return knot_value + weight * (previous_value - knot_value)
        previous_df, previous_value = knot_df, knot_value
    # beyond the last breakpoint 1/df runs to 0, where the quantile is z
    z_value = _Z_VALUES[confidence]
    weight = (1.0 / df) / (1.0 / previous_df)
    return z_value + weight * (previous_value - z_value)


@dataclass(frozen=True)
class MetricAggregate:
    """Mean ± confidence-interval summary of one metric over replicates."""

    mean: float
    #: sample standard deviation (ddof=1; 0 for a single replicate)
    std: float
    #: half-width of the two-sided confidence interval (0 for one replicate)
    ci_half_width: float
    count: int
    confidence: float = 0.95

    @property
    def lower(self) -> float:
        """Lower bound of the confidence interval."""
        return self.mean - self.ci_half_width

    @property
    def upper(self) -> float:
        """Upper bound of the confidence interval."""
        return self.mean + self.ci_half_width

    def format(self, float_format: str = "{:.2f}") -> str:
        """Render as ``mean ± half-width``.

        Single samples and aggregates without spread information (identical
        or non-finite observations) render as the bare mean.
        """
        mean_text = float_format.format(self.mean)
        if self.count <= 1 or self.ci_half_width == 0.0:
            return mean_text
        return f"{mean_text} ± {float_format.format(self.ci_half_width)}"


def aggregate_values(values: Sequence[float], confidence: float = 0.95) -> MetricAggregate:
    """Summarise independent replicate observations of one metric.

    Non-finite observations (e.g. the ``final_limit`` of an uncontrolled
    run is infinite) carry no spread information: the aggregate keeps the
    mean but reports zero std/CI width instead of propagating ``inf - inf``
    NaNs into the tables.
    """
    count = len(values)
    if count == 0:
        raise ValueError("at least one observation is required")
    mean = sum(values) / count
    if count == 1 or not all(math.isfinite(value) for value in values):
        return MetricAggregate(mean=mean, std=0.0, ci_half_width=0.0,
                               count=count, confidence=confidence)
    variance = sum((value - mean) ** 2 for value in values) / (count - 1)
    std = math.sqrt(variance)
    half_width = t_critical(count - 1, confidence) * std / math.sqrt(count)
    return MetricAggregate(mean=mean, std=std, ci_half_width=half_width,
                           count=count, confidence=confidence)


@dataclass
class CellAggregate:
    """All replicates of one cell plus the per-metric summaries."""

    cell_id: str
    kind: str
    label: str = ""
    replicates: List[CellResult] = field(default_factory=list)
    metrics: Dict[str, MetricAggregate] = field(default_factory=dict)

    @property
    def count(self) -> int:
        """Number of replicates aggregated."""
        return len(self.replicates)

    def metric(self, name: str) -> MetricAggregate:
        """The aggregate of one metric (KeyError if it was never observed)."""
        return self.metrics[name]


def aggregate_cells(results: Iterable[CellResult],
                    confidence: float = 0.95) -> List[CellAggregate]:
    """Group an executor's result stream by cell and summarise each metric.

    Cells appear in first-observation order (i.e. spec order for the
    deterministic executors).  A metric is aggregated over the replicates
    that reported it, so a metric missing from a degenerate replicate does
    not discard the whole cell.
    """
    grouped: Dict[str, CellAggregate] = {}
    for result in results:
        aggregate = grouped.get(result.cell_id)
        if aggregate is None:
            aggregate = CellAggregate(cell_id=result.cell_id, kind=result.kind,
                                      label=result.label)
            grouped[result.cell_id] = aggregate
        aggregate.replicates.append(result)
    for aggregate in grouped.values():
        names: Dict[str, None] = {}
        for replicate in aggregate.replicates:
            for name in replicate.metrics:
                names.setdefault(name, None)
        for name in names:
            observed = [replicate.metrics[name] for replicate in aggregate.replicates
                        if name in replicate.metrics]
            aggregate.metrics[name] = aggregate_values(observed, confidence=confidence)
    return list(grouped.values())
