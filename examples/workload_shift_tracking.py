#!/usr/bin/env python3
"""Reproduce the Figure 13 / Figure 14 story: tracking a workload shift.

The transaction size (number of accessed granules, ``k``) jumps abruptly in
the middle of the run, which moves the position of the throughput optimum.
Both adaptive controllers are driven through the same scenario; the script
prints their threshold trajectories against the analytic reference optimum
and the tracking metrics that quantify the paper's qualitative comparison
(IS reacts fast but adjusts poorly, PA is slower but more accurate).

Run with:  python examples/workload_shift_tracking.py [--quick]
"""

import argparse

from repro.core import IncrementalStepsController, ParabolaController
from repro.experiments import (
    ExperimentScale,
    compute_tracking_metrics,
    contention_bound_params,
    format_series_table,
    jump_scenario,
    run_tracking_experiment,
)
from repro.experiments.report import format_comparison


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use the small smoke-test scale instead of the benchmark scale")
    arguments = parser.parse_args()
    scale = ExperimentScale.smoke() if arguments.quick else ExperimentScale.benchmark()

    params = contention_bound_params(seed=17)
    jump_time = scale.tracking_horizon / 2.0
    scenario = jump_scenario("accesses", 4, 16, jump_time)

    controllers = {
        "IS": IncrementalStepsController(
            initial_limit=30, beta=0.5, gamma=8, delta=20, min_step=4.0,
            lower_bound=4, upper_bound=params.n_terminals),
        "PA": ParabolaController(
            initial_limit=30, forgetting=0.85, probe_amplitude=6.0, max_move=40.0,
            lower_bound=4, upper_bound=params.n_terminals),
    }

    print(f"Transaction size jumps from 4 to 16 accesses at t = {jump_time:.0f}s; "
          f"horizon {scale.tracking_horizon:.0f}s.\n")

    results = {}
    metrics = {}
    for name, controller in controllers.items():
        print(f"Running the {name} controller through the jump ...")
        result = run_tracking_experiment(controller, scenario, base_params=params, scale=scale)
        results[name] = result
        metrics[name] = compute_tracking_metrics(
            result, disturbance_time=jump_time,
            evaluate_after=scale.tracking_horizon * 0.15)

    for name, result in results.items():
        figure = "13" if name == "IS" else "14"
        print(f"\nFigure {figure} — {name} threshold trajectory (n* vs the reference optimum):")
        print(format_series_table(result, every=max(1, len(result.trace) // 20)))

    print("\nTracking comparison (lower error = better tracking):")
    print(format_comparison(metrics))
    print("\nThe paper's observation: IS reacts quickly but struggles to settle on the")
    print("new optimum, while PA takes a few intervals longer (its estimator has to")
    print("forget the pre-jump measurements) but then tracks the optimum accurately;")
    print("the residual oscillation of PA is the probing it needs for identifiability.")


if __name__ == "__main__":
    main()
