"""End-to-end cache soundness against the golden trajectory fixtures.

The headline guarantee of the sweep service: a cache-hit result is
byte-identical to a fresh simulation.  Every golden scenario is submitted
twice through one persistent service — cold (an empty cache; every cell
misses and is simulated by real worker subprocesses) and warm (every cell
hits; nothing is simulated) — and both runs must agree byte-for-byte with
each other *and* with the committed golden fixtures.  Hit/miss counts are
asserted exactly, per job, not approximately.

The final test re-mounts the same cache directory in a fresh service with
**zero workers connected**: every scenario still completes, which proves
the warm path performs zero simulations rather than merely fewer.
"""

import json
from pathlib import Path

import pytest

from repro.canonical import canonical_json
from repro.dist.cluster import spawn_local_workers
from repro.svc.client import ServiceClient
from repro.svc.service import SweepService

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

SCENARIOS = ("thrashing", "fig12_stationary", "fig13_is_jump",
             "fig14_pa_jump", "sinusoid", "mixed_classes",
             "cc_compare", "displacement_policies",
             "deadlock_resolution", "isolation_tradeoff",
             "probe_calibration", "open_diurnal", "flash_crowd")


def test_scenario_list_matches_the_golden_harness():
    """Keep this suite honest: it must cover every pinned scenario."""
    import importlib.util
    import sys

    tool = GOLDEN_DIR.parent.parent / "tools" / "regen_goldens.py"
    if "regen_goldens" in sys.modules:
        regen = sys.modules["regen_goldens"]
    else:
        spec = importlib.util.spec_from_file_location("regen_goldens", tool)
        regen = importlib.util.module_from_spec(spec)
        sys.modules["regen_goldens"] = regen
        spec.loader.exec_module(regen)
    assert tuple(regen.GOLDEN_SCENARIOS) == SCENARIOS


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("svc-cache")


@pytest.fixture(scope="module")
def service(cache_dir):
    """One persistent service with two real worker subprocesses."""
    with SweepService(cache=cache_dir, heartbeat_timeout=30.0) as svc:
        processes = spawn_local_workers(svc.worker_address, 2)
        try:
            svc.executor.wait_for_workers(2)
            yield svc
        finally:
            svc.close()
            for process in processes:
                try:
                    process.wait(timeout=15)
                except Exception:
                    process.kill()
                    process.wait()


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_cold_then_warm_byte_identical_to_golden(service, scenario):
    client = ServiceClient(service.control_address)
    golden = json.loads((GOLDEN_DIR / f"{scenario}.json").read_text())
    n_cells = len(golden["cells"])

    cold_id = client.submit_scenario(scenario)
    cold = client.wait(cold_id, timeout=600.0)
    assert cold["state"] == "done"
    # exact accounting: an empty cache means every cell missed
    assert cold["cache_hits"] == 0
    assert cold["cache_misses"] == n_cells

    warm_id = client.submit_scenario(scenario)
    warm = client.wait(warm_id, timeout=600.0)
    assert warm["state"] == "done"
    # and a fully warm cache means every cell hit
    assert warm["cache_hits"] == n_cells
    assert warm["cache_misses"] == 0

    cold_doc = client.results(cold_id)
    warm_doc = client.results(warm_id)
    # the headline guarantee, stated as bytes
    assert canonical_json(warm_doc) == canonical_json(cold_doc)

    # and both agree with the committed golden fixture, cell by cell
    assert [cell["cell_id"] for cell in warm_doc["cells"]] == \
        [cell["cell_id"] for cell in golden["cells"]]
    for served, pinned in zip(warm_doc["cells"], golden["cells"]):
        assert canonical_json(served["metrics"]) == \
            canonical_json(pinned["metrics"]), served["cell_id"]


def test_warm_cache_serves_every_scenario_with_zero_workers(cache_dir):
    """Zero simulations, not merely fewer: no worker ever connects."""
    from repro.runner.cells import execute_run_spec
    from repro.svc.cache import ResultCache
    from repro.svc.service import scenario_cells

    # self-containment: when this test runs alone (the full module run
    # leaves the cache fully warm already), fill any missing entries
    # in-process so the zero-worker property is tested on its own merits
    cache = ResultCache(cache_dir)
    for scenario in SCENARIOS:
        for cell in scenario_cells(scenario):
            if not cache.path_for(cache.key_for(cell)).exists():
                cache.put(cell, execute_run_spec(cell))

    with SweepService(cache=cache_dir) as svc:
        client = ServiceClient(svc.control_address)
        for scenario in SCENARIOS:
            job_id = client.submit_scenario(scenario)
            status = client.wait(job_id, timeout=60.0)
            assert status["state"] == "done", scenario
            assert status["cache_misses"] == 0, scenario
            assert status["cache_hits"] == status["n_cells"] > 0, scenario
        assert svc.executor.workers == 0
