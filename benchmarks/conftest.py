"""Shared fixtures and helpers for the benchmark harness.

Each benchmark regenerates the data series behind one figure of the paper
(or one ablation called out in DESIGN.md).  The benchmarks are *experiment
drivers*, not micro-benchmarks: the interesting output is the series they
print (run ``pytest benchmarks/ --benchmark-only -s``) and attach to the
pytest-benchmark ``extra_info``; the timing numbers simply document how long
each experiment takes to reproduce.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable:

* ``smoke``      -- seconds per experiment, noisy results
* ``benchmark``  -- the default; a few minutes for the whole suite
* ``paper``      -- full-size runs approximating the paper's figures

Execution is controlled with two more variables, both forwarded to
:func:`repro.runner.run_sweep`:

* ``REPRO_BENCH_WORKERS``    -- worker processes per sweep (0 = serial,
  the default; results are identical for every setting)
* ``REPRO_BENCH_REPLICATES`` -- independent replicates per cell (default 1;
  with more, the sweep tables report mean ± 95% CI)

With ``REPRO_BENCH_ARTIFACTS=DIR`` set, the session additionally writes one
machine-readable ``BENCH_<name>.json`` per benchmark into ``DIR``: the
selected scale/workers/replicates, the timing statistics, and the full
``extra_info`` series the benchmark attached.  The files are
before/after-friendly — stable keys, sorted, one file per benchmark — so
two runs can be diffed or joined by filename in CI.
"""

import json
import os
import re

import pytest

from repro.experiments.config import ExperimentScale


def _selected_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "benchmark").lower()
    if name == "smoke":
        return ExperimentScale.smoke()
    if name == "paper":
        return ExperimentScale.paper()
    return ExperimentScale.benchmark()


def _int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None or not value.strip():
        return default
    return int(value)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale selected via REPRO_BENCH_SCALE."""
    return _selected_scale()


@pytest.fixture(scope="session")
def workers() -> int:
    """Worker processes per sweep, selected via REPRO_BENCH_WORKERS."""
    return _int_env("REPRO_BENCH_WORKERS", 0)


@pytest.fixture(scope="session")
def replicates() -> int:
    """Replicates per cell, selected via REPRO_BENCH_REPLICATES."""
    return max(1, _int_env("REPRO_BENCH_REPLICATES", 1))


def _artifact_name(bench_name: str) -> str:
    """``BENCH_<name>.json`` with the benchmark name made filename-safe."""
    return f"BENCH_{re.sub(r'[^A-Za-z0-9._-]+', '_', bench_name)}.json"


def _timing_stats(bench) -> dict:
    stats = getattr(bench, "stats", None)
    if stats is None:
        return {}
    timing = {}
    for key in ("min", "max", "mean", "stddev", "rounds"):
        value = getattr(stats, key, None)
        if value is not None:
            timing[key] = value
    return timing


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<name>.json`` per benchmark when artifacts are on.

    Gated on ``REPRO_BENCH_ARTIFACTS`` so plain local runs stay
    side-effect-free; everything is read defensively because
    pytest-benchmark's session object is an internal surface.
    """
    artifact_dir = os.environ.get("REPRO_BENCH_ARTIFACTS")
    if not artifact_dir:
        return
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(benchmark_session, "benchmarks", None) or []
    if not benchmarks:
        return
    os.makedirs(artifact_dir, exist_ok=True)
    for bench in benchmarks:
        name = getattr(bench, "name", None) or getattr(bench, "fullname", "benchmark")
        payload = {
            "name": name,
            "fullname": getattr(bench, "fullname", name),
            "group": getattr(bench, "group", None),
            "scale": os.environ.get("REPRO_BENCH_SCALE", "benchmark"),
            "workers": _int_env("REPRO_BENCH_WORKERS", 0),
            "replicates": max(1, _int_env("REPRO_BENCH_REPLICATES", 1)),
            "timing": _timing_stats(bench),
            "extra_info": dict(getattr(bench, "extra_info", {}) or {}),
        }
        path = os.path.join(artifact_dir, _artifact_name(str(name)))
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, sort_keys=True, indent=2, default=str)
            stream.write("\n")


def run_once(benchmark, function):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are long-running simulations; repeating them for
    statistical timing accuracy would multiply the suite's runtime without
    adding information, so every benchmark uses a single round.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)
