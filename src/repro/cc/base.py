"""Common interface for concurrency control schemes.

A concurrency control (CC) scheme observes the data accesses of transactions
and decides which transactions may commit.  The transaction model drives the
scheme through five hooks:

``begin``
    A (new or restarted) transaction execution starts.
``access``
    The transaction reads or writes a data granule.  Blocking schemes return
    a simulation event the caller must wait on (the lock grant); optimistic
    schemes return ``None`` and merely record the access.  The event may fail
    with :class:`TransactionAborted` (e.g. a deadlock victim), in which case
    the transaction must abort its current execution.  ``access`` may also
    *raise* :class:`TransactionAborted` synchronously — the
    deadlock-avoiding 2PL variants abort a doomed request at request time
    (wait-die) or deliver a pending wound before the access happens
    (wound-wait) instead of ever enqueueing it.
``try_commit``
    The transaction finished its last phase and asks to commit.  Returns
    ``True`` (commit) or ``False`` (certification failed; the transaction
    must abort and restart).
``finish``
    Called after a successful commit so the scheme can install writes and
    release resources.
``abort``
    Called whenever an execution is abandoned (certification failure,
    deadlock victim, displacement) so the scheme can clean up.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.tp.transaction import Transaction


class AbortReason(enum.Enum):
    """Why a transaction execution was abandoned.

    ``CERTIFICATION``, ``DEADLOCK`` and ``DISPLACEMENT`` are the original
    reasons of the paper's model.  ``WOUND`` and ``DIE`` are the
    *restart-family* reasons of the timestamp-priority 2PL variants: a
    wound-wait victim is aborted by an older transaction that wants its
    lock, a wait-die victim aborts itself rather than wait for an older
    lock holder.  Neither involves a waits-for cycle, so reporting them
    separately from ``DEADLOCK`` keeps the restart behaviour of the
    deadlock-*avoiding* schemes visible in sweep results.
    """

    CERTIFICATION = "certification"
    DEADLOCK = "deadlock"
    DISPLACEMENT = "displacement"
    WOUND = "wound"
    DIE = "die"


class TransactionAborted(Exception):
    """Raised into / returned to a transaction whose execution must abort."""

    def __init__(self, reason: AbortReason, detail: str = ""):
        super().__init__(f"{reason.value}: {detail}" if detail else reason.value)
        self.reason = reason
        self.detail = detail


class ConcurrencyControl(ABC):
    """Abstract base class of all concurrency control schemes."""

    #: Human-readable scheme name used in reports.
    name: str = "abstract"

    #: True for multiversion schemes, whose reads may return a granule
    #: version *older* than the latest committed one.  The history recorder
    #: (:mod:`repro.cc.history`) keys on this: for single-version schemes
    #: the version read is, by definition, the latest committed at the time
    #: the read takes effect, while a multiversion scheme must report the
    #: version it actually served via :meth:`observed_version`.
    multiversion: bool = False

    def observed_version(self, txn: "Transaction", item: int) -> Optional[int]:
        """The writer txn_id of the version ``txn`` last read of ``item``.

        Only meaningful for schemes with :attr:`multiversion` set, which
        must override it; ``None`` denotes the initial (never-written)
        version of the granule.  The history recorder calls this right
        after a non-blocking ``access`` returns, so the scheme only needs
        to remember the versions of the *current* execution.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not a multiversion scheme")

    @abstractmethod
    def begin(self, txn: "Transaction") -> None:
        """Register the start of a (possibly re-)execution of ``txn``."""

    @abstractmethod
    def access(self, txn: "Transaction", item: int, is_write: bool) -> Optional[Event]:
        """Record/request access to ``item``.

        Returns an event to wait on for blocking schemes, ``None`` otherwise.
        """

    @abstractmethod
    def try_commit(self, txn: "Transaction") -> bool:
        """Certify ``txn``; return True to commit, False to abort+restart."""

    @abstractmethod
    def finish(self, txn: "Transaction") -> None:
        """Finalize a committed transaction (install writes, release locks)."""

    @abstractmethod
    def abort(self, txn: "Transaction", reason: AbortReason) -> None:
        """Clean up an abandoned execution of ``txn``."""

    def active_count(self) -> int:
        """Number of executions currently registered (begin without end)."""
        return 0

    def wait_depth(self) -> int:
        """Number of transactions currently blocked inside the scheme.

        The lock-queue-depth probe hook (:mod:`repro.obs.probes`): blocking
        schemes override this with the size of their waits-for structure;
        non-blocking schemes never park a transaction, so the default 0 is
        exact for them.
        """
        return 0

    def reset(self) -> None:
        """Forget all state (used between experiment repetitions)."""
