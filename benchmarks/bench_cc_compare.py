"""Cross-scheme load control: 2PL vs OCC with and without a controller.

The paper simulates only the optimistic certification scheme but claims
(Section 1) that adaptive load control applies to blocking schemes as
well.  The ``cc_compare`` scenario runs the same closed system under both
registered concurrency control schemes — four labeled series: each scheme
uncontrolled and under the incremental-steps controller, over the standard
offered-load grid with common random numbers.

The qualitative statements checked:

* *both* schemes exhibit the Figure 1 shape uncontrolled: the heaviest
  load's throughput falls well below the scheme's own peak (data-contention
  thrashing for OCC, blocking/deadlock thrashing for 2PL);
* for *both* schemes the IS controller keeps heavy-load throughput above
  the uncontrolled heavy-load throughput and near the scheme's peak —
  the load-control result is not an artifact of the optimistic scheme.
"""

from conftest import run_once

from repro.experiments.report import format_sweep_table
from repro.runner import run_sweep, stationary_sweeps

SCHEMES = ("OCC", "2PL")


def test_cc_compare_control_holds_for_both_schemes(benchmark, scale, workers,
                                                   replicates):
    def experiment():
        result = run_sweep("cc_compare", scale=scale, workers=workers,
                           replicates=replicates)
        return stationary_sweeps(result)

    sweeps = run_once(benchmark, experiment)

    print()
    print("2PL vs OCC — throughput with and without IS control")
    print(format_sweep_table(list(sweeps.values())))

    for scheme in SCHEMES:
        uncontrolled = sweeps[f"{scheme} without control"]
        controlled = sweeps[f"{scheme} IS control"]
        peak = uncontrolled.peak().throughput
        heaviest = max(point.offered_load for point in uncontrolled.points)

        benchmark.extra_info[f"{scheme}_uncontrolled"] = [
            round(p.throughput, 2) for p in uncontrolled.points]
        benchmark.extra_info[f"{scheme}_is_control"] = [
            round(p.throughput, 2) for p in controlled.points]

        # thrashing without control at the heaviest load, for BOTH schemes
        assert uncontrolled.throughput_at(heaviest) < 0.8 * peak, (
            f"{scheme}: no thrashing — the scenario lost its point")
        # the controller rescues the heavy-load throughput
        assert controlled.throughput_at(heaviest) > uncontrolled.throughput_at(heaviest)
        assert controlled.throughput_at(heaviest) > 0.55 * peak, (
            f"{scheme}: IS control failed to hold throughput near the peak")
