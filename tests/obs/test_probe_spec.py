"""Probes on RunSpec: validation, pickling, and byte-stable JSON encoding."""

import pickle

import pytest

from repro.experiments.config import ExperimentScale, default_system_params
from repro.experiments.dynamic import jump_scenario
from repro.experiments.stationary import stationary_sweep_spec
from repro.obs.probes import PROBE_NAMES
from repro.runner.specs import (
    ControllerSpec,
    RunSpec,
    run_spec_from_jsonable,
    run_spec_to_jsonable,
)


def stationary_spec(**overrides) -> RunSpec:
    settings = dict(
        kind="stationary",
        cell_id="probe-spec/N=25",
        params=default_system_params(seed=47),
        scale=ExperimentScale.smoke(),
        probes=PROBE_NAMES,
    )
    settings.update(overrides)
    return RunSpec(**settings)


class TestSpecValidation:
    def test_probe_names_are_validated_at_construction(self):
        with pytest.raises(ValueError, match="unknown probe"):
            stationary_spec(probes=("no_such_probe",))

    def test_probes_are_normalised_to_a_tuple(self):
        spec = stationary_spec(probes=["mpl", "lock_wait"])
        assert spec.probes == ("mpl", "lock_wait")

    def test_tracking_runs_reject_probes(self):
        with pytest.raises(ValueError, match="stationary runs only"):
            stationary_spec(
                kind="tracking",
                controller=ControllerSpec.make("incremental_steps"),
                scenario=jump_scenario("accesses", 4, 16, jump_time=5.0),
            )

    def test_specs_without_probes_stay_valid(self):
        assert stationary_spec(probes=None).probes is None


class TestPickleRoundTrip:
    def test_probed_spec_survives_pickling(self):
        spec = stationary_spec()
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestJsonRoundTrip:
    def test_probed_spec_round_trips_bit_identically(self):
        spec = stationary_spec()
        assert run_spec_from_jsonable(run_spec_to_jsonable(spec)) == spec

    def test_encoder_omits_the_key_when_probes_are_off(self):
        """Pre-probes archives (and the committed fuzz corpus) must stay
        byte-identical, so the field only appears when set."""
        data = run_spec_to_jsonable(stationary_spec(probes=None))
        assert "probes" not in data

    def test_encoder_emits_plain_names_when_probes_are_on(self):
        data = run_spec_to_jsonable(stationary_spec())
        assert data["probes"] == list(PROBE_NAMES)

    def test_decoder_tolerates_archives_predating_probes(self):
        data = run_spec_to_jsonable(stationary_spec(probes=None))
        assert run_spec_from_jsonable(data).probes is None


class TestSweepBuilder:
    def test_stationary_sweep_spec_threads_probes_to_every_cell(self):
        sweep = stationary_sweep_spec(
            default_system_params(seed=47), None, ExperimentScale.smoke(),
            "probed", name="probe-sweep", probes=("lock_wait", "mpl"),
        )
        assert all(cell.probes == ("lock_wait", "mpl") for cell in sweep.cells)

    def test_probe_calibration_scenario_keeps_its_frozen_probe_set(self):
        """The scenario pins the six probes it was goldened with; probe
        additions after that (arrival_backlog) must not widen its schema."""
        from repro.runner.registry import build_sweep

        frozen = ("lock_wait", "lock_queue", "admission_queue", "mpl",
                  "abort_rates", "displacement")
        sweep = build_sweep("probe_calibration", scale=ExperimentScale.smoke())
        assert all(cell.probes == frozen for cell in sweep.cells)
        assert all(cell.scheme_diagnostics for cell in sweep.cells)

    def test_open_diurnal_scenario_carries_the_backlog_probe(self):
        from repro.runner.registry import build_sweep

        sweep = build_sweep("open_diurnal", scale=ExperimentScale.smoke())
        assert all(cell.probes == ("arrival_backlog",) for cell in sweep.cells)
        assert all(cell.arrivals is not None for cell in sweep.cells)
