"""Cross-scheme invariants: every registered CC scheme obeys the model.

The registry (:mod:`repro.cc.registry`) makes the concurrency control
scheme a sweep dimension, so these tests run over *every* registered kind
— a scheme added to the registry is automatically held to the same
contract:

* **closed-model conservation** — transactions never leak: at any stopping
  point ``admitted == committed + in-flight`` (without displacement every
  departure is a commit; abandoned executions restart inside the system);
* **rise-then-fall** — the load/throughput curve has the paper's Figure 1
  shape.  The loads are not guessed: they are placed around the scheme's
  *analytic oracle* — the OCC fixed-point model
  (:class:`repro.analytic.occ.OccModel`) for the optimistic scheme, Tay's
  locking model (:class:`repro.analytic.tay.TayModel`) for 2PL — so the
  test also checks that the simulated optimum sits where the matching
  first-order theory predicts thrashing territory begins.
"""

import pytest

from repro.analytic.occ import OccModel
from repro.analytic.tay import TayModel
from repro.cc import CCSpec, cc_family, cc_kinds
from repro.experiments.stationary import run_stationary_point
from repro.sim.engine import Simulator
from repro.tp.params import SystemParams, WorkloadParams
from repro.tp.system import TransactionSystem

#: the six built-in schemes; a registration regression must fail loudly,
#: not silently shrink the parametrized coverage below
EXPECTED_KINDS = ("occ_forward", "snapshot_isolation", "timestamp_cert",
                  "two_phase_locking", "wait_die", "wound_wait")


def contended_params(seed: int = 11, think_time: float = 0.0) -> SystemParams:
    """A small, heavily contended configuration: fast runs, real conflicts.

    ``think_time=0`` keeps every terminal's transaction permanently in the
    system, so the multiprogramming level *equals* the offered load and
    the analytic oracles (which reason in MPL) apply directly.
    """
    return SystemParams(
        n_terminals=10, think_time=think_time, n_cpus=2,
        cpu_init=0.002, cpu_per_access=0.002, cpu_commit=0.002,
        disk_per_access=0.004, disk_commit=0.004, restart_delay=0.005,
        seed=seed,
        workload=WorkloadParams(db_size=150, accesses_per_txn=6,
                                query_fraction=0.1, write_fraction=0.8))


def oracle_optimum(kind: str, params: SystemParams) -> float:
    """The analytic model's optimum MPL, chosen by the scheme's *family*.

    Locking-family schemes (detector, wound-wait, wait-die) are placed by
    Tay's blocking model; optimistic ones by the OCC fixed point — the same
    rule the runner uses for its reported model references.
    """
    if cc_family(kind) == "locking":
        model = TayModel(db_size=params.workload.db_size,
                         locks_per_txn=params.workload.accesses_per_txn)
        return model.critical_mpl()
    # optimistic / multiversion / unknown schemes: the OCC fixed-point model
    # (snapshot isolation certifies first-committer-wins over write sets,
    # an optimistic validation, so the OCC fixed point places it too)
    return OccModel(params).optimal_mpl()


class TestEveryRegisteredScheme:
    def test_the_full_scheme_family_is_registered(self):
        """Exactly the six built-ins: a lost registration would silently
        deselect every parametrized test below, so pin the roster itself."""
        assert cc_kinds() == EXPECTED_KINDS
        assert len(cc_kinds()) == 6
        families = {kind: cc_family(kind) for kind in cc_kinds()}
        assert families == {
            "occ_forward": "optimistic",
            "snapshot_isolation": "multiversion",
            "timestamp_cert": "optimistic",
            "two_phase_locking": "locking",
            "wait_die": "locking",
            "wound_wait": "locking",
        }

    @pytest.mark.parametrize("kind", cc_kinds())
    @pytest.mark.parametrize("seed", [5, 23])
    def test_admitted_equals_committed_plus_in_flight(self, kind, seed):
        """Gate-level conservation holds under every scheme."""
        params = contended_params(seed=seed, think_time=0.1).with_changes(
            n_terminals=30)
        sim = Simulator()
        system = TransactionSystem(params, sim=sim, cc=CCSpec.make(kind).build(sim))
        system.run(until=5.0)

        gate = system.gate
        metrics = system.metrics
        in_flight = gate.current_load
        assert gate.total_admitted == gate.total_departed + in_flight
        # no displacement configured: departures are exactly the commits
        assert gate.total_departed == metrics.commits
        assert gate.total_admitted == metrics.commits + in_flight
        # abandoned executions restart in place, they never depart
        assert metrics.restarts == metrics.total_aborts
        assert metrics.commits > 0
        # the contended configuration must exercise the scheme's abort path
        assert metrics.total_aborts > 0, f"{kind} never aborted: test is vacuous"
        # the scheme's own registration count drains with the transactions
        assert system.cc.active_count() <= params.n_terminals

    @pytest.mark.parametrize("kind", cc_kinds())
    def test_throughput_rises_then_falls_where_the_oracle_predicts(self, kind):
        """The smoke-scale curve has the Figure 1 shape around the oracle."""
        base = contended_params(seed=11)
        optimum = oracle_optimum(kind, base)
        assert optimum > 1.0, "oracle must predict a usable optimum"
        low = max(2, round(0.25 * optimum))
        mid = max(low + 1, round(optimum))
        high = max(4 * mid, round(6 * optimum))

        throughput = {}
        for load in (low, mid, high):
            point = run_stationary_point(
                base.with_changes(n_terminals=load),
                horizon=6.0, warmup=1.0, cc=CCSpec.make(kind))
            throughput[load] = point.throughput

        # rising flank: well below the oracle optimum, more load helps
        assert throughput[mid] > throughput[low], (
            f"{kind}: no rise {throughput} around oracle optimum {optimum:.1f}")
        # falling flank: far beyond it, contention destroys throughput
        assert throughput[high] < 0.85 * throughput[mid], (
            f"{kind}: no thrashing {throughput} beyond oracle optimum {optimum:.1f}")
