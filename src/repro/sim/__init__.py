"""Discrete-event simulation kernel.

This subpackage is the substrate every other part of the reproduction is
built on.  It provides a small, process-based discrete-event simulation
kernel in the style of SimPy:

* :class:`~repro.sim.engine.Simulator` -- the event loop and clock.
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Timeout`,
  :class:`~repro.sim.engine.Process` -- the event primitives processes
  yield on.
* :class:`~repro.sim.resources.Resource` -- an FCFS multi-server queue
  (used for the multiprocessor of the transaction processing model).
* :class:`~repro.sim.random_streams.RandomStreams` -- named, independently
  seeded random number streams so experiments are reproducible and
  variance-reduction via common random numbers is possible.
* :mod:`~repro.sim.stats` -- time-weighted and observation statistics,
  batch means and confidence intervals.
"""

from repro.sim.engine import (
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    Simulator,
    Timeout,
)
from repro.sim.random_streams import RandomStreams
from repro.sim.resources import Resource, Store
from repro.sim.stats import (
    BatchMeans,
    ObservationStats,
    TimeWeightedStats,
    confidence_interval,
)
from repro.sim.trace import TrajectoryTracer, active_tracer, install_tracer, tracing

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Simulator",
    "Timeout",
    "RandomStreams",
    "Resource",
    "Store",
    "BatchMeans",
    "ObservationStats",
    "TimeWeightedStats",
    "confidence_interval",
    "TrajectoryTracer",
    "active_tracer",
    "install_tracer",
    "tracing",
]
