"""Length-prefixed pickle framing for the coordinator/worker wire protocol.

One message is one pickled Python object, framed as an 8-byte big-endian
unsigned length prefix followed by exactly that many pickle bytes.  The
frame boundary is what makes the protocol trivially robust over TCP's byte
stream: :func:`recv_message` reads the prefix, then the payload, and never
has to guess where a pickle ends.  EOF in the middle of (or between)
frames raises :class:`ConnectionClosed`; a frame that does not decode, or
whose declared length exceeds :data:`MAX_MESSAGE_BYTES`, raises
:class:`ProtocolError` — a corrupted or hostile prefix must not make the
receiver allocate gigabytes.

Messages themselves are plain tuples whose first element is one of the
``MSG_*`` kind constants below; the comments give each message's shape.
Everything crossing the wire — :class:`~repro.runner.specs.RunSpec` cells,
:class:`~repro.runner.cells.CellResult` payloads, exceptions — is already
picklable by the runner's design (PR 1), so the framing layer needs no
schema of its own.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Tuple

#: 8-byte big-endian unsigned frame-length prefix
HEADER = struct.Struct(">Q")

#: refuse to (de)serialise frames beyond this size (1 GiB)
MAX_MESSAGE_BYTES = 1 << 30

#: largest single ``recv`` when draining a frame body
_RECV_CHUNK = 1 << 20

# worker -> coordinator
MSG_HELLO = "hello"            # (MSG_HELLO, worker_name)
MSG_READY = "ready"            # (MSG_READY,)
MSG_HEARTBEAT = "heartbeat"    # (MSG_HEARTBEAT,)
MSG_RESULT = "result"          # (MSG_RESULT, generation, index, payload)
MSG_TASK_ERROR = "task-error"  # (MSG_TASK_ERROR, generation, index, error)

# coordinator -> worker
MSG_TASK = "task"              # (MSG_TASK, generation, index, function, item)
MSG_SHUTDOWN = "shutdown"      # (MSG_SHUTDOWN,)

# sweep-service control plane (client -> service), one request per
# connection; every request is answered with MSG_SVC_OK or MSG_SVC_ERROR
MSG_SVC_SUBMIT = "svc-submit"      # (MSG_SVC_SUBMIT, name, cells)
MSG_SVC_STATUS = "svc-status"      # (MSG_SVC_STATUS, job_id_or_None)
MSG_SVC_RESULTS = "svc-results"    # (MSG_SVC_RESULTS, job_id)
MSG_SVC_CELLS = "svc-cells"        # (MSG_SVC_CELLS, job_id)
MSG_SVC_CACHE = "svc-cache"        # (MSG_SVC_CACHE,)
MSG_SVC_SHUTDOWN = "svc-shutdown"  # (MSG_SVC_SHUTDOWN,)

# service -> client
MSG_SVC_OK = "svc-ok"              # (MSG_SVC_OK, payload)
MSG_SVC_ERROR = "svc-error"        # (MSG_SVC_ERROR, message)


class ProtocolError(RuntimeError):
    """The peer sent bytes that do not frame a valid message."""


class ConnectionClosed(ConnectionError):
    """The peer closed the connection (EOF inside or between frames)."""


def send_message(sock: socket.socket, message) -> None:
    """Frame and send one message (blocking until fully written)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame limit"
        )
    # one sendall for prefix+payload: the frame hits the stream atomically
    # with respect to this socket's other senders (callers lock per socket)
    sock.sendall(HEADER.pack(len(payload)) + payload)


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ConnectionClosed`."""
    if count == 0:
        return b""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, _RECV_CHUNK))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} of {count} "
                "bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)


def recv_message(sock: socket.socket):
    """Receive one framed message (blocking until a whole frame arrived)."""
    (length,) = HEADER.unpack(recv_exact(sock, HEADER.size))
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame announces {length} bytes, beyond the "
            f"{MAX_MESSAGE_BYTES}-byte limit"
        )
    payload = recv_exact(sock, length)
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"host:port"``; an empty host means every interface."""
    host, separator, port_text = address.rpartition(":")
    if not separator:
        raise ValueError(f"address must be 'host:port', got {address!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"port must be an integer, got {port_text!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port must be in [0, 65535], got {port}")
    return host or "0.0.0.0", port


def format_address(host: str, port: int) -> str:
    """The inverse of :func:`parse_address`."""
    return f"{host}:{port}"
