"""Ablation (Section 1): feedback control vs. the non-adaptive alternatives.

Section 1 lists the alternatives to feedback control: do nothing, a fixed
upper bound tuned by the administrator, and theoretically derived rules of
thumb (Tay, Iyer).  The paper argues these are inadequate when the workload
changes.  This ablation runs all six policies through the same workload jump
(transaction size doubles mid-run) on a reduced configuration and compares
the useful work they deliver.

Expectations encoded as assertions:

* every admission-controlled policy beats "do nothing";
* the adaptive feedback controllers (IS, PA) are competitive with the best
  policy overall (within 25%), without knowing the workload parameters.
"""

from conftest import run_once

from repro.experiments.config import default_system_params
from repro.experiments.dynamic import jump_scenario, run_tracking_suite
from repro.experiments.report import format_table
from repro.runner import ControllerSpec, tracking_results
from repro.tp.params import WorkloadParams


def _policies():
    return {
        "no control": ControllerSpec.make("no_control"),
        "fixed limit (tuned for small txns)": ControllerSpec.make("fixed", limit=40),
        "tay rule": ControllerSpec.make("tay"),
        "iyer rule": ControllerSpec.make("iyer"),
        "incremental steps": ControllerSpec.make(
            "incremental_steps", initial_limit=20, beta=1.0, gamma=5, delta=10,
            min_step=2.0, lower_bound=2),
        "parabola approximation": ControllerSpec.make(
            "parabola", initial_limit=20, forgetting=0.9, probe_amplitude=3.0,
            max_move=30.0, lower_bound=2),
    }


def test_ablation_controllers_vs_baselines(benchmark, scale, workers, replicates):
    base = default_system_params(seed=29)
    params = base.with_changes(
        n_terminals=250,
        workload=WorkloadParams(db_size=2000, accesses_per_txn=6,
                                query_fraction=0.25, write_fraction=0.5))
    scenario = jump_scenario("accesses", 6, 12, jump_time=scale.tracking_horizon / 2.0)

    def experiment():
        sweep_result = run_tracking_suite(
            _policies(), scenario, base_params=params, scale=scale,
            workers=workers, replicates=replicates, name="ablation_baselines")
        return {
            name: {
                "commits": result.total_commits,
                "mean_response_time": result.mean_response_time,
                "mean_throughput": result.trace.mean_throughput(),
            }
            for name, result in tracking_results(sweep_result).items()
        }

    rows = run_once(benchmark, experiment)

    print()
    print("Ablation — load-control policies under a workload jump")
    print(format_table(
        ["policy", "commits", "mean throughput", "mean response time"],
        [[name, row["commits"], row["mean_throughput"], row["mean_response_time"]]
         for name, row in rows.items()]))

    for name, row in rows.items():
        benchmark.extra_info[f"{name} commits"] = row["commits"]

    best = max(row["commits"] for row in rows.values())
    no_control = rows["no control"]["commits"]
    for name in ("incremental steps", "parabola approximation", "iyer rule", "tay rule",
                 "fixed limit (tuned for small txns)"):
        assert rows[name]["commits"] >= no_control, f"{name} did worse than doing nothing"
    for name in ("incremental steps", "parabola approximation"):
        assert rows[name]["commits"] >= 0.75 * best, (
            f"{name} fell more than 25% behind the best policy")
