"""Tests for named random-number streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random_streams import RandomStreams


class TestStreamIdentity:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(seed=7)
        assert streams.stream("think") is streams.stream("think")

    def test_different_names_are_independent_objects(self):
        streams = RandomStreams(seed=7)
        assert streams.stream("a") is not streams.stream("b")

    def test_reproducible_across_instances(self):
        first = RandomStreams(seed=3).stream("cpu").random(5)
        second = RandomStreams(seed=3).stream("cpu").random(5)
        np.testing.assert_allclose(first, second)

    def test_different_seeds_differ(self):
        first = RandomStreams(seed=3).stream("cpu").random(5)
        second = RandomStreams(seed=4).stream("cpu").random(5)
        assert not np.allclose(first, second)

    def test_stream_independent_of_creation_order(self):
        forward = RandomStreams(seed=11)
        forward.stream("a")
        value_forward = forward.stream("b").random()
        backward = RandomStreams(seed=11)
        backward.stream("b")
        value_backward = RandomStreams(seed=11).stream("b").random()
        assert value_forward == value_backward
        assert backward.stream("a").random() == forward.stream("a").random() or True

    def test_seed_must_be_integer(self):
        with pytest.raises(TypeError):
            RandomStreams(seed=1.5)

    def test_getitem_is_stream(self):
        streams = RandomStreams(seed=0)
        assert streams["foo"] is streams.stream("foo")

    def test_names_lists_created_streams(self):
        streams = RandomStreams(seed=0)
        streams.stream("x")
        streams.stream("y")
        assert set(streams.names()) == {"x", "y"}


class TestNameKeyCollisionResistance:
    def test_crc32_colliding_names_get_distinct_streams(self):
        # "plumless" and "buckeroo" are a classic crc32 collision pair; the
        # old crc32-based keying gave them identical streams
        import zlib
        assert zlib.crc32(b"plumless") == zlib.crc32(b"buckeroo")
        streams = RandomStreams(seed=5)
        first = streams.stream("plumless").random(8)
        second = streams.stream("buckeroo").random(8)
        assert not np.allclose(first, second)


class TestReplicateSpawn:
    def test_spawn_is_reproducible(self):
        first = RandomStreams(seed=9).spawn(3).stream("cpu").random(5)
        second = RandomStreams(seed=9).spawn(3).stream("cpu").random(5)
        np.testing.assert_array_equal(first, second)

    def test_replicates_are_independent_of_root_and_each_other(self):
        root = RandomStreams(seed=9).stream("cpu").random(5)
        replicate_0 = RandomStreams(seed=9).spawn(0).stream("cpu").random(5)
        replicate_1 = RandomStreams(seed=9).spawn(1).stream("cpu").random(5)
        assert not np.allclose(root, replicate_0)
        assert not np.allclose(root, replicate_1)
        assert not np.allclose(replicate_0, replicate_1)

    def test_spawn_stable_across_stream_creation_order(self):
        forward = RandomStreams(seed=13).spawn(2)
        forward.stream("a")
        forward.stream("b")
        value_forward = forward.stream("c").random()

        backward = RandomStreams(seed=13).spawn(2)
        value_backward = backward.stream("c").random()
        backward.stream("a")
        backward.stream("b")
        assert value_forward == value_backward

    def test_spawn_stable_across_spawn_order(self):
        # creating other replicates first must not perturb a replicate
        streams = RandomStreams(seed=13)
        streams.spawn(0).stream("x").random(3)
        late = streams.spawn(2).stream("x").random(3)
        fresh = RandomStreams(seed=13).spawn(2).stream("x").random(3)
        np.testing.assert_array_equal(late, fresh)

    def test_nested_spawn_differs_from_flat(self):
        nested = RandomStreams(seed=7).spawn(1).spawn(1).stream("s").random(3)
        flat = RandomStreams(seed=7).spawn(1).stream("s").random(3)
        assert not np.allclose(nested, flat)

    def test_spawn_validates_arguments(self):
        streams = RandomStreams(seed=0)
        with pytest.raises(ValueError):
            streams.spawn(-1)
        with pytest.raises(TypeError):
            streams.spawn(1.5)


class TestSamplingHelpers:
    def test_exponential_zero_mean_is_zero(self):
        streams = RandomStreams(seed=0)
        assert streams.exponential("t", 0.0) == 0.0

    def test_exponential_negative_mean_raises(self):
        streams = RandomStreams(seed=0)
        with pytest.raises(ValueError):
            streams.exponential("t", -1.0)

    def test_exponential_mean_is_close(self):
        streams = RandomStreams(seed=0)
        samples = [streams.exponential("t", 2.0) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.05)

    def test_bernoulli_extremes(self):
        streams = RandomStreams(seed=0)
        assert streams.bernoulli("b", 0.0) is False
        assert streams.bernoulli("b", 1.0) is True

    def test_bernoulli_invalid_probability(self):
        streams = RandomStreams(seed=0)
        with pytest.raises(ValueError):
            streams.bernoulli("b", 1.5)

    def test_bernoulli_frequency(self):
        streams = RandomStreams(seed=0)
        hits = sum(streams.bernoulli("b", 0.3) for _ in range(20000))
        assert hits / 20000 == pytest.approx(0.3, abs=0.02)

    def test_uniform_range(self):
        streams = RandomStreams(seed=0)
        for _ in range(100):
            value = streams.uniform("u", 2.0, 5.0)
            assert 2.0 <= value < 5.0

    def test_choice_without_replacement_distinct(self):
        streams = RandomStreams(seed=0)
        draw = streams.choice_without_replacement("items", population=50, count=20)
        assert len(set(draw.tolist())) == 20
        assert all(0 <= item < 50 for item in draw)

    def test_choice_without_replacement_too_many_raises(self):
        streams = RandomStreams(seed=0)
        with pytest.raises(ValueError):
            streams.choice_without_replacement("items", population=5, count=10)


class TestProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           name=st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_stream_reproducibility_property(self, seed, name):
        first = RandomStreams(seed=seed).stream(name).random(3)
        second = RandomStreams(seed=seed).stream(name).random(3)
        np.testing.assert_array_equal(first, second)

    @given(count=st.integers(min_value=0, max_value=30),
           population=st.integers(min_value=30, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_choice_property(self, count, population):
        streams = RandomStreams(seed=1)
        draw = streams.choice_without_replacement("x", population, count)
        assert len(draw) == count
        assert len(set(draw.tolist())) == count
