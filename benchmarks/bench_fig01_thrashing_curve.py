"""Figure 1: the load/throughput function of the uncontrolled system.

The paper's Figure 1 is a schematic of the three phases (underload,
saturation, overload/thrashing).  This benchmark produces the measured
counterpart through the runner's ``thrashing`` scenario: a stationary sweep
of the offered load with *no* load control, classified into the three
phases.  The reproduction succeeds if the curve rises, flattens and then
drops -- i.e. the overload phase is non-empty and the peak lies strictly
inside the measured range.
"""

from conftest import run_once

from repro.analytic.thrashing import classify_phases, thrashing_onset
from repro.experiments.report import format_sweep_table
from repro.runner import run_sweep, stationary_sweeps


def test_fig01_uncontrolled_thrashing_curve(benchmark, scale, workers, replicates):
    def experiment():
        result = run_sweep("thrashing", scale=scale, workers=workers,
                           replicates=replicates)
        (sweep,) = stationary_sweeps(result).values()
        return sweep

    sweep = run_once(benchmark, experiment)
    curve = sweep.curve()
    phases = classify_phases(curve)
    onset = thrashing_onset(curve, drop_fraction=0.1)

    print()
    print("Figure 1 — load/throughput function without load control")
    print(format_sweep_table([sweep]))
    print(f"peak throughput {phases.peak_throughput:.1f} tps at offered load "
          f"{phases.optimum_load:.0f}; thrashing onset at load {onset:.0f}")

    benchmark.extra_info["curve"] = [(load, round(value, 2)) for load, value in curve]
    benchmark.extra_info["optimum_load"] = phases.optimum_load
    benchmark.extra_info["peak_throughput"] = round(phases.peak_throughput, 2)
    benchmark.extra_info["thrashing_onset"] = onset

    # the qualitative claims of Figure 1
    assert phases.has_thrashing, "the uncontrolled system must thrash in the measured range"
    loads = [load for load, _ in curve]
    assert phases.optimum_load < max(loads), "the optimum must lie inside the sweep"
    heaviest = curve[-1][1]
    assert heaviest < 0.9 * phases.peak_throughput
