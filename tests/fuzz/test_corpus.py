"""Tests for the counterexample corpus: archive, load, canonical encoding."""

import json
import math

import pytest

from repro.experiments.config import ExperimentScale
from repro.fuzz.adversaries import HotKeyAdversary
from repro.fuzz.corpus import (
    CORPUS_FORMAT,
    Counterexample,
    archive_counterexamples,
    canonical_json,
    corpus_paths,
    counterexample_from_jsonable,
    load_counterexample,
)
from repro.fuzz.oracle import Verdict


def make_counterexample():
    adversary = HotKeyAdversary(controller="parabola", seed=2)
    spec = adversary.lower(ExperimentScale.smoke())
    verdict = Verdict(cell_id=spec.cell_id, failed=True, reasons=("rescue",),
                      throughput=1.5, throughput_fraction=0.2,
                      reference="TayModel")
    metrics = {"throughput": 1.5, "commits": 9.0, "mean_mpl": 4.0}
    return Counterexample(adversary=adversary, spec=spec, verdict=verdict,
                          metrics=metrics)


class TestCanonicalJson:
    def test_sorted_keys_no_whitespace(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_non_finite_floats_survive(self):
        text = canonical_json({"x": math.inf, "y": -math.inf, "z": math.nan})
        data = json.loads(text)
        assert data == {"x": "__inf__", "y": "__-inf__", "z": "__nan__"}


class TestRoundTrip:
    def test_document_round_trip_is_identity(self):
        ce = make_counterexample()
        restored = counterexample_from_jsonable(json.loads(
            canonical_json(ce.to_jsonable())))
        assert restored == ce

    def test_unknown_format_is_rejected(self):
        data = make_counterexample().to_jsonable()
        data["format"] = CORPUS_FORMAT + 1
        with pytest.raises(ValueError, match="corpus format"):
            counterexample_from_jsonable(data)

    def test_file_name_is_content_addressed(self):
        ce = make_counterexample()
        assert ce.file_name() == f"hot_key__{ce.adversary.fingerprint()}.json"


class TestArchive:
    def test_archive_and_load_round_trip(self, tmp_path):
        ce = make_counterexample()
        (path,) = archive_counterexamples([ce], tmp_path)
        assert path == tmp_path / ce.file_name()
        assert load_counterexample(path) == ce

    def test_archiving_twice_is_byte_identical(self, tmp_path):
        ce = make_counterexample()
        (path,) = archive_counterexamples([ce], tmp_path / "a")
        (other,) = archive_counterexamples([ce], tmp_path / "b")
        assert path.read_bytes() == other.read_bytes()

    def test_non_finite_metrics_round_trip(self, tmp_path):
        ce = make_counterexample()
        ce = Counterexample(adversary=ce.adversary, spec=ce.spec,
                            verdict=ce.verdict,
                            metrics={**ce.metrics, "ratio": math.inf})
        (path,) = archive_counterexamples([ce], tmp_path)
        assert load_counterexample(path).metrics["ratio"] == math.inf

    def test_corpus_paths_are_sorted(self, tmp_path):
        for name in ("b.json", "a.json", "c.txt"):
            (tmp_path / name).write_text("{}")
        assert [p.name for p in corpus_paths(tmp_path)] == ["a.json", "b.json"]
