"""Recursive least squares with exponentially fading memory.

The Parabola Approximation controller (Section 4.2) estimates the
coefficients of ``P(n) = a0 + a1*n + a2*n^2`` from recent (n, P) measurement
pairs "using a recursive least-square estimator with exponentially fading
memory [Young, 1984]".  This module implements that estimator in its
standard textbook form:

Given a regression vector ``x_t`` and an observation ``y_t``, with forgetting
factor ``lambda = a`` (the paper's aging coefficient), the update is::

    e_t   = y_t - x_t' theta_{t-1}
    K_t   = P_{t-1} x_t / (lambda + x_t' P_{t-1} x_t)
    theta_t = theta_{t-1} + K_t e_t
    P_t   = (P_{t-1} - K_t x_t' P_{t-1}) / lambda

``lambda = 1`` reproduces ordinary recursive least squares (infinite
memory); smaller values discount old measurements geometrically, giving the
estimator the "short intervals, exponentially weighted" memory shape of
Figure 6 that the paper recommends over long unweighted intervals.

The implementation is dimension-generic (the PA controller uses dimension 3)
and numerically guarded: the covariance is kept symmetric and its trace
bounded so a long stretch of identical regressors (no excitation) cannot
blow it up.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class RecursiveLeastSquares:
    """Exponentially weighted recursive least-squares estimator."""

    def __init__(self, dimension: int, forgetting: float = 0.95,
                 initial_covariance: float = 1e4,
                 max_covariance_trace: float = 1e9):
        """Create an estimator for ``dimension`` coefficients.

        ``forgetting`` is the paper's aging coefficient ``a`` in (0, 1]; the
        effective memory length is roughly ``1 / (1 - a)`` samples.
        ``initial_covariance`` expresses how little we trust the initial
        (zero) coefficient vector; large values let the first few samples
        dominate, which is the standard way to start an RLS estimator
        without a separate batch initialisation.
        """
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError(f"forgetting factor must be in (0, 1], got {forgetting}")
        if initial_covariance <= 0:
            raise ValueError("initial_covariance must be positive")
        self.dimension = int(dimension)
        self.forgetting = float(forgetting)
        self.initial_covariance = float(initial_covariance)
        self.max_covariance_trace = float(max_covariance_trace)
        self.theta = np.zeros(self.dimension)
        self.covariance = np.eye(self.dimension) * self.initial_covariance
        self.samples = 0

    # ------------------------------------------------------------------
    def update(self, regressor: Sequence[float], observation: float) -> np.ndarray:
        """Fold one (regressor, observation) pair into the estimate.

        Returns the updated coefficient vector (a copy).
        """
        x = np.asarray(regressor, dtype=float)
        if x.shape != (self.dimension,):
            raise ValueError(
                f"regressor must have shape ({self.dimension},), got {x.shape}"
            )
        y = float(observation)
        p_x = self.covariance @ x
        denominator = self.forgetting + float(x @ p_x)
        gain = p_x / denominator
        error = y - float(x @ self.theta)
        self.theta = self.theta + gain * error
        self.covariance = (self.covariance - np.outer(gain, p_x)) / self.forgetting
        # numerical hygiene: keep the covariance symmetric and bounded
        self.covariance = 0.5 * (self.covariance + self.covariance.T)
        trace = float(np.trace(self.covariance))
        if trace > self.max_covariance_trace:
            self.covariance *= self.max_covariance_trace / trace
        self.samples += 1
        return self.theta.copy()

    def predict(self, regressor: Sequence[float]) -> float:
        """Predicted observation for ``regressor`` under the current estimate."""
        x = np.asarray(regressor, dtype=float)
        if x.shape != (self.dimension,):
            raise ValueError(
                f"regressor must have shape ({self.dimension},), got {x.shape}"
            )
        return float(x @ self.theta)

    @property
    def effective_memory(self) -> float:
        """Approximate number of samples the estimator 'remembers'."""
        if self.forgetting >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - self.forgetting)

    def reset(self, theta: Optional[Sequence[float]] = None) -> None:
        """Restart the estimator, optionally seeding the coefficients."""
        if theta is None:
            self.theta = np.zeros(self.dimension)
        else:
            seeded = np.asarray(theta, dtype=float)
            if seeded.shape != (self.dimension,):
                raise ValueError(
                    f"theta must have shape ({self.dimension},), got {seeded.shape}"
                )
            self.theta = seeded.copy()
        self.covariance = np.eye(self.dimension) * self.initial_covariance
        self.samples = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RLS dim={self.dimension} forgetting={self.forgetting} "
            f"samples={self.samples} theta={np.array2string(self.theta, precision=3)}>"
        )
