"""Plain-text tables for experiment results.

The benchmarks and examples print the same series the paper's figures show;
these helpers format them as fixed-width text tables so ``pytest -s`` output
and example scripts are readable without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "{:.2f}") -> str:
    """Format ``rows`` as a fixed-width table with ``headers``."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_sweep_table(sweeps: Sequence, loads: Optional[Sequence[int]] = None,
                       show_ci: bool = True,
                       float_format: str = "{:.2f}") -> str:
    """Tabulate one or more stationary sweeps side by side (Figure 12 style).

    ``sweeps`` are :class:`~repro.experiments.stationary.StationarySweep`
    objects; the table has one row per offered load and one throughput
    column per sweep.  For sweeps produced from replicated runs (non-empty
    :attr:`~repro.experiments.stationary.StationarySweep.aggregates`) the
    throughput cells read ``mean ± ci`` unless ``show_ci=False``.

    Sweeps that carry a scheme-aware analytic reference (non-empty
    ``model_reference_name``) get a footer line naming the model each
    series was referenced against, so a table mixing 2PL and OCC series
    states which first-order theory backs which column.
    """
    if not sweeps:
        raise ValueError("at least one sweep is required")
    if loads is None:
        loads = sorted({point.offered_load for sweep in sweeps for point in sweep.points})
    headers = ["offered load"] + [f"T ({sweep.label})" for sweep in sweeps]
    rows = []
    for load in loads:
        row: List[object] = [load]
        for sweep in sweeps:
            aggregate = sweep.aggregates.get(load) if show_ci else None
            if aggregate is not None:
                row.append(aggregate.metric("throughput").format(float_format))
                continue
            try:
                row.append(sweep.throughput_at(load))
            except KeyError:
                row.append("-")
        rows.append(row)
    table = format_table(headers, rows, float_format=float_format)
    references = [
        f"{sweep.label}: {sweep.model_reference_name}"
        for sweep in sweeps if getattr(sweep, "model_reference_name", "")
    ]
    if references:
        table += "\nanalytic references — " + ", ".join(references)
    return table


#: (metric key, column header) pairs shown by :func:`format_aggregate_table`
DEFAULT_AGGREGATE_COLUMNS: Sequence[Tuple[str, str]] = (
    ("throughput", "T [txn/s]"),
    ("mean_response_time", "R [s]"),
    ("restart_ratio", "restarts/commit"),
)


def format_aggregate_table(aggregates: Sequence,
                           columns: Optional[Sequence[Tuple[str, str]]] = None,
                           float_format: str = "{:.2f}") -> str:
    """Tabulate replicated-run summaries: one row per cell, ``mean ± ci``.

    ``aggregates`` are :class:`~repro.runner.replication.CellAggregate`
    objects (e.g. :attr:`~repro.runner.api.SweepResult.aggregates`);
    ``columns`` selects the metrics as (metric key, header) pairs.  Metrics
    a cell never reported render as ``-``.
    """
    if columns is None:
        columns = DEFAULT_AGGREGATE_COLUMNS
    headers = ["cell", "n"] + [header for _key, header in columns]
    rows = []
    for aggregate in aggregates:
        row: List[object] = [aggregate.cell_id, aggregate.count]
        for key, _header in columns:
            summary = aggregate.metrics.get(key)
            row.append(summary.format(float_format) if summary is not None else "-")
        rows.append(row)
    return format_table(headers, rows, float_format=float_format)


def format_series_table(result, every: int = 1) -> str:
    """Tabulate a tracking run (Figure 13/14 style): t, n*, n_opt, n, T.

    ``result`` is a :class:`~repro.experiments.dynamic.TrackingResult`;
    ``every`` subsamples the rows to keep the table short.
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    headers = ["time", "n* (threshold)", "n_opt (reference)", "n (load)", "throughput"]
    rows = []
    series = list(zip(result.trace.times, result.trace.limits,
                      result.reference_optima, result.trace.concurrency,
                      result.trace.throughput))
    for index, (sample_time, limit, optimum, load, throughput) in enumerate(series):
        if index % every:
            continue
        rows.append([sample_time, limit, optimum, load, throughput])
    return format_table(headers, rows)


def format_comparison(metrics_by_controller: Dict[str, object]) -> str:
    """Tabulate tracking metrics per controller (IS vs PA comparison)."""
    headers = ["controller", "mean |err|", "max |err|", "settling time", "throughput ratio"]
    rows = []
    for name, metrics in metrics_by_controller.items():
        rows.append([
            name,
            metrics.mean_absolute_error,
            metrics.max_absolute_error,
            metrics.settling_time,
            metrics.throughput_ratio,
        ])
    return format_table(headers, rows)
