"""Classification of measured load/throughput curves (Figure 1).

Given a measured curve -- a sequence of (load, throughput) points from a
stationary sweep -- these helpers locate the optimum, detect whether the
curve exhibits thrashing (a significant drop beyond the optimum) and
classify each point into the three phases of Figure 1:

* **underload** -- throughput still grows roughly linearly with the load;
* **saturation** -- throughput has flattened near its maximum;
* **overload** -- throughput has dropped significantly below the maximum.

The stationary benchmark uses these helpers to report, alongside the raw
series, the same qualitative facts the paper states about its Figure 12:
where the optimum lies, and that the uncontrolled system thrashes while the
controlled one does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class CurvePhases:
    """Phase classification of a stationary load/throughput sweep."""

    #: (load, throughput) points classified as underload (phase I)
    underload: Tuple[Tuple[float, float], ...]
    #: points classified as saturation (phase II)
    saturation: Tuple[Tuple[float, float], ...]
    #: points classified as overload / thrashing (phase III)
    overload: Tuple[Tuple[float, float], ...]
    #: the load at which throughput peaked
    optimum_load: float
    #: the peak throughput
    peak_throughput: float

    @property
    def has_thrashing(self) -> bool:
        """True if any point beyond the optimum dropped into overload."""
        return len(self.overload) > 0


def _validated(points: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    if not points:
        raise ValueError("at least one (load, throughput) point is required")
    ordered = sorted((float(load), float(value)) for load, value in points)
    return ordered


def find_optimum(points: Sequence[Tuple[float, float]]) -> Tuple[float, float]:
    """The (load, throughput) point with the highest throughput."""
    ordered = _validated(points)
    return max(ordered, key=lambda point: point[1])


def thrashing_onset(points: Sequence[Tuple[float, float]],
                    drop_fraction: float = 0.1) -> float:
    """Smallest load beyond the optimum where throughput dropped by ``drop_fraction``.

    Returns ``inf`` if the curve never drops that far (no thrashing
    observed in the measured range).
    """
    if not 0.0 < drop_fraction < 1.0:
        raise ValueError(f"drop_fraction must be in (0, 1), got {drop_fraction}")
    ordered = _validated(points)
    optimum_load, peak = find_optimum(ordered)
    threshold = peak * (1.0 - drop_fraction)
    for load, value in ordered:
        if load > optimum_load and value < threshold:
            return load
    return float("inf")


def classify_phases(points: Sequence[Tuple[float, float]],
                    saturation_fraction: float = 0.9,
                    overload_fraction: float = 0.9) -> CurvePhases:
    """Split a sweep into the underload / saturation / overload phases.

    A point before the optimum is *underload* while its throughput is below
    ``saturation_fraction`` of the peak and *saturation* otherwise; a point
    beyond the optimum is *saturation* while it stays above
    ``overload_fraction`` of the peak and *overload* once it falls below.
    """
    if not 0.0 < saturation_fraction <= 1.0:
        raise ValueError(f"saturation_fraction must be in (0, 1], got {saturation_fraction}")
    if not 0.0 < overload_fraction <= 1.0:
        raise ValueError(f"overload_fraction must be in (0, 1], got {overload_fraction}")
    ordered = _validated(points)
    optimum_load, peak = find_optimum(ordered)
    underload: List[Tuple[float, float]] = []
    saturation: List[Tuple[float, float]] = []
    overload: List[Tuple[float, float]] = []
    for load, value in ordered:
        if load <= optimum_load:
            if peak > 0 and value < saturation_fraction * peak:
                underload.append((load, value))
            else:
                saturation.append((load, value))
        else:
            if peak > 0 and value < overload_fraction * peak:
                overload.append((load, value))
            else:
                saturation.append((load, value))
    return CurvePhases(
        underload=tuple(underload),
        saturation=tuple(saturation),
        overload=tuple(overload),
        optimum_load=optimum_load,
        peak_throughput=peak,
    )
