"""The repository's single canonical JSON encoding.

Three byte-exact artifact families grew their own copies of the same
encoder — the golden trajectory fixtures (``tools/regen_goldens.py``), the
versioned sweep archives (:mod:`repro.dist.archive`) and the fuzz corpus
(:mod:`repro.fuzz.corpus`) — and the sweep service's content-addressed
result cache (:mod:`repro.svc`) keys every cell on the same bytes.  Four
consumers of one encoding is past the point where "they happen to agree"
is acceptable: this module is the one definition, and
``tests/svc/test_canonical.py`` pins that every call site produces
identical bytes for identical payloads.

The canonical form is deliberately boring and fully deterministic:

* keys sorted, separators ``(",", ":")`` (no whitespace), ASCII-only
  escapes — so equal payloads serialise to equal bytes on every platform
  and Python version;
* floats serialised by ``repr`` (CPython's ``json``), which round-trips
  IEEE-754 doubles exactly — string equality of two canonical documents is
  bit-for-bit equality of every float in them;
* non-finite floats tagged as the strings ``"__nan__"`` / ``"__inf__"`` /
  ``"__-inf__"`` (strict JSON has no Infinity/NaN), restored exactly by
  :func:`restore`;
* no timestamps, hostnames or other environment leaks — those are the
  producers' responsibility, enforced by their byte-identity tests.
"""

from __future__ import annotations

import hashlib
import json
import math

#: blake2b digest size (bytes) used by :func:`canonical_digest`; 32 bytes
#: (256 bits) matches the golden fixtures' pre-existing event-log digests
DIGEST_SIZE = 32


def sanitize(value):
    """Replace non-finite floats with tagged strings, recursively.

    JSON has no Infinity/NaN; the tags keep the canonical form strictly
    JSON-compliant while remaining an exact, unambiguous encoding (e.g.
    the ``inf`` final limit of an uncontrolled run).  Tuples become lists,
    matching what a JSON round-trip would produce.
    """
    if isinstance(value, float):
        if value != value:  # NaN
            return "__nan__"
        if value == math.inf:
            return "__inf__"
        if value == -math.inf:
            return "__-inf__"
        return value
    if isinstance(value, dict):
        return {key: sanitize(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(entry) for entry in value]
    return value


def restore(value):
    """Inverse of :func:`sanitize`: turn the tag strings back into floats."""
    if isinstance(value, dict):
        return {key: restore(entry) for key, entry in value.items()}
    if isinstance(value, list):
        return [restore(entry) for entry in value]
    if value == "__nan__":
        return math.nan
    if value == "__inf__":
        return math.inf
    if value == "__-inf__":
        return -math.inf
    return value


def canonical_json(payload) -> str:
    """Serialise ``payload`` into the repository's canonical JSON form.

    Equal payloads produce equal strings; unequal floats produce unequal
    strings (``repr`` round-trips doubles exactly).  This is the byte
    representation compared by the golden tests, written to the fuzz
    corpus, and hashed into the sweep service's cache keys.
    """
    return json.dumps(sanitize(payload), sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, allow_nan=False)


def canonical_digest(payload) -> str:
    """Blake2b-256 hex digest of the canonical serialisation of ``payload``."""
    return hashlib.blake2b(canonical_json(payload).encode("utf-8"),
                           digest_size=DIGEST_SIZE).hexdigest()
