"""Figure 2: the dynamic behaviour of a thrashing system.

Figure 2 sketches the load/performance function as a surface over time: a
"mountain" whose ridge (the optimum) moves.  Section 3 abstracts load
control as tracking that ridge from realized (load, performance) pairs only.

This benchmark materializes the surface from two directions and checks that
they agree qualitatively:

* the *synthetic* scenario used by the controller unit tests (an explicit
  moving optimum), evaluated on a (time, load) grid;
* the *analytic OCC model* of the simulated system, evaluated for the
  workload parameters a jump scenario produces before and after the jump --
  this is the reference optimum the Figure 13/14 benchmarks track.
"""

from conftest import run_once

from repro.analytic.occ import OccModel
from repro.analytic.synthetic import DynamicOptimumScenario
from repro.experiments.config import contention_bound_params
from repro.experiments.report import format_table
from repro.tp.workload import JumpSchedule, SinusoidSchedule


def test_fig02_dynamic_performance_surface(benchmark, scale):
    base = contention_bound_params()

    def experiment():
        # synthetic ridge: position moves sinusoidally, height jumps
        scenario = DynamicOptimumScenario(
            position=SinusoidSchedule(mean=100.0, amplitude=40.0, period=400.0),
            height=JumpSchedule(80.0, 120.0, jump_time=300.0))
        times = [20.0 * i for i in range(scale.synthetic_steps // 20 + 1)]
        loads = [10.0 * i for i in range(1, 21)]
        surface = {
            time: [round(scenario.function_at(time).value(load), 2) for load in loads]
            for time in times
        }
        ridge = [(time, scenario.optimum_at(time), scenario.peak_at(time)) for time in times]

        # analytic ridge of the simulated system before/after a k jump
        optima = {}
        for k in (4, 16):
            params = base.with_changes(workload=base.workload.with_changes(accesses_per_txn=k))
            model = OccModel(params)
            optimum = model.optimal_mpl()
            optima[k] = (optimum, model.throughput(optimum))
        return surface, ridge, optima

    surface, ridge, optima = run_once(benchmark, experiment)

    print()
    print("Figure 2 — moving ridge of the synthetic performance mountain")
    print(format_table(["time", "optimum position", "peak performance"], ridge))
    print()
    print("Analytic ridge of the simulated system (k jump 4 -> 16):")
    print(format_table(["k", "optimum MPL", "peak throughput"],
                       [[k, optimum, peak] for k, (optimum, peak) in optima.items()]))

    benchmark.extra_info["synthetic_ridge"] = [
        (time, round(position, 1), round(peak, 1)) for time, position, peak in ridge]
    benchmark.extra_info["analytic_optima"] = {
        str(k): (round(optimum, 1), round(peak, 1)) for k, (optimum, peak) in optima.items()}

    # the ridge genuinely moves in both views
    positions = [position for _, position, _ in ridge]
    assert max(positions) - min(positions) > 20.0
    assert optima[16][0] > 1.5 * optima[4][0]
    # every time slice of the surface is unimodal (monotone up, then down)
    for values in surface.values():
        peak_index = values.index(max(values))
        assert values[:peak_index + 1] == sorted(values[:peak_index + 1])
        assert values[peak_index:] == sorted(values[peak_index:], reverse=True)
