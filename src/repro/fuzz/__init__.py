"""Adversarial workload fuzzer: hunt configurations the controllers cannot rescue.

The paper's claim is that adaptive load control (IS/PA) rescues the system
from thrashing under *any* workload variation; every scenario the
repository tests by hand is a point probe of that claim.  This package
turns the probe into a search (the HISTEX/AWDIT discipline — generate the
hostile inputs, don't hand-pick them):

* :mod:`repro.fuzz.adversaries` — typed, picklable attack patterns that
  lower to ordinary :class:`~repro.runner.specs.RunSpec` cells;
* :mod:`repro.fuzz.generator` — a seeded deterministic candidate stream;
* :mod:`repro.fuzz.oracle` — executable failure predicates (rescue failure
  against the scheme-aware analytic optimum, displacement livelock,
  admission collapse);
* :mod:`repro.fuzz.executor` — the campaign loop over the runner's
  serial/parallel executors;
* :mod:`repro.fuzz.corpus` — counterexamples archived as replayable JSON
  regression fixtures (``tests/fuzz_corpus/``);
* :mod:`repro.fuzz.cli` — the ``repro-fuzz`` console entry point.
"""

from repro.fuzz.adversaries import (
    ADAPTIVE_CONTROLLERS,
    AdversarySpec,
    ArrivalBurstAdversary,
    ClassMixFlipAdversary,
    DisplacementSpikeAdversary,
    HotKeyAdversary,
    SizeSpikeAdversary,
    adversary_from_jsonable,
    adversary_kinds,
)
from repro.fuzz.corpus import (
    Counterexample,
    archive_counterexamples,
    canonical_json,
    corpus_paths,
    counterexample_from_jsonable,
    load_counterexample,
    replay_counterexample,
)
from repro.fuzz.executor import FuzzReport, run_campaign
from repro.fuzz.generator import generate_candidates
from repro.fuzz.oracle import FailureThresholds, Verdict, rescue_score, score_run

__all__ = [
    "ADAPTIVE_CONTROLLERS",
    "AdversarySpec",
    "ArrivalBurstAdversary",
    "ClassMixFlipAdversary",
    "DisplacementSpikeAdversary",
    "HotKeyAdversary",
    "SizeSpikeAdversary",
    "adversary_from_jsonable",
    "adversary_kinds",
    "Counterexample",
    "archive_counterexamples",
    "canonical_json",
    "corpus_paths",
    "counterexample_from_jsonable",
    "load_counterexample",
    "replay_counterexample",
    "FuzzReport",
    "run_campaign",
    "generate_candidates",
    "FailureThresholds",
    "Verdict",
    "rescue_score",
    "score_run",
]
