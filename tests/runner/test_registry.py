"""Tests for the scenario registry and the top-level run_sweep API."""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.stationary import StationarySweep, sweep_offered_load
from repro.runner import (
    ControllerSpec,
    available_scenarios,
    build_sweep,
    get_scenario,
    run_sweep,
    stationary_sweeps,
    tracking_results,
)
from repro.runner.specs import KIND_STATIONARY, KIND_TRACKING

#: small enough for test runs; mirrors the smoke preset but tighter
TINY = ExperimentScale(
    stationary_horizon=2.0,
    warmup=0.5,
    offered_loads=(10, 30),
    tracking_horizon=12.0,
    measurement_interval=2.0,
    synthetic_steps=30,
)


class TestRegistry:
    def test_paper_scenarios_are_registered(self):
        names = available_scenarios()
        for name in ("cc_compare", "deadlock_resolution",
                     "displacement_policies", "fig12_stationary",
                     "fig13_is_jump", "fig14_pa_jump", "mixed_classes",
                     "sinusoid", "thrashing"):
            assert name in names

    def test_cc_compare_structure(self):
        from repro.cc import CCSpec

        sweep = build_sweep("cc_compare", scale=TINY)
        # 2 schemes x (uncontrolled + IS) x offered loads
        assert len(sweep) == 4 * len(TINY.offered_loads)
        labels = {cell.label for cell in sweep.cells}
        assert labels == {"OCC without control", "OCC IS control",
                          "2PL without control", "2PL IS control"}
        for cell in sweep.cells:
            assert cell.kind == KIND_STATIONARY
            assert isinstance(cell.cc, CCSpec)
            expected = ("timestamp_cert" if cell.label.startswith("OCC")
                        else "two_phase_locking")
            assert cell.cc.kind == expected

    def test_cc_compare_runs_both_schemes(self):
        result = run_sweep("cc_compare", scale=TINY, workers=2)
        assert len(result.results) == 4 * len(TINY.offered_loads)
        assert all(r.metrics["throughput"] > 0 for r in result.results)
        # 2PL resolves conflicts by blocking: at the light load of the tiny
        # grid it should restart (deadlock) much more rarely than OCC aborts
        occ = [r for r in result.results if r.label == "OCC without control"]
        tpl = [r for r in result.results if r.label == "2PL without control"]
        assert sum(r.metrics["restart_ratio"] for r in tpl) <= \
            sum(r.metrics["restart_ratio"] for r in occ)

    def test_cc_compare_victim_policy_override(self):
        sweep = build_sweep("cc_compare", scale=TINY, victim_policy="oldest")
        tpl_cells = [cell for cell in sweep.cells if cell.label.startswith("2PL")]
        assert tpl_cells
        for cell in tpl_cells:
            assert dict(cell.cc.options)["victim_policy"] == "oldest"

    def test_deadlock_resolution_structure(self):
        from repro.cc import CCSpec

        sweep = build_sweep("deadlock_resolution", scale=TINY)
        # 3 locking variants x (uncontrolled + IS) x offered loads
        assert len(sweep) == 6 * len(TINY.offered_loads)
        kinds_by_prefix = {"detect": "two_phase_locking",
                           "wound-wait": "wound_wait",
                           "wait-die": "wait_die"}
        labels = {cell.label for cell in sweep.cells}
        assert labels == {f"{prefix} {suffix}"
                          for prefix in kinds_by_prefix
                          for suffix in ("without control", "IS control")}
        for cell in sweep.cells:
            assert cell.kind == KIND_STATIONARY
            assert cell.scheme_diagnostics is True
            assert isinstance(cell.cc, CCSpec)
            prefix = cell.label.rsplit(" ", 2)[0]
            assert cell.cc.kind == kinds_by_prefix[prefix]
            # the cc_compare workload: tightened database, heavier writes
            assert cell.params.workload.db_size == 1500
            assert cell.params.workload.write_fraction == 0.6

    def test_deadlock_resolution_series_carry_tay_references(self):
        result = run_sweep("deadlock_resolution", scale=TINY)
        sweeps = stationary_sweeps(result)
        assert len(sweeps) == 6
        for label, sweep in sweeps.items():
            assert sweep.model_reference_name == "TayModel", label
        # every cell reports the per-reason abort metrics and the label
        for cell in result.results:
            assert cell.model_reference == "TayModel"
            for key in ("aborts_deadlock", "aborts_wound", "aborts_die"):
                assert key in cell.metrics

    def test_displacement_policies_structure(self):
        from repro.core.displacement import DisplacementPolicy, VictimCriterion

        sweep = build_sweep("displacement_policies", scale=TINY)
        assert [cell.label for cell in sweep.cells] == \
            ["no displacement"] + [criterion.value for criterion in VictimCriterion]
        baseline, *policies = sweep.cells
        assert baseline.displacement is None
        for cell, criterion in zip(policies, VictimCriterion):
            assert cell.kind == KIND_TRACKING
            assert isinstance(cell.displacement, DisplacementPolicy)
            assert cell.displacement.criterion is criterion
            assert cell.displacement.hysteresis == 1.0

    def test_displacement_policies_cells_report_displaced_metric(self):
        result = run_sweep("displacement_policies", scale=TINY)
        for cell in result.results:
            if cell.label == "no displacement":
                assert "displaced" not in cell.metrics
            else:
                assert cell.metrics["displaced"] >= 0.0

    def test_mixed_classes_structure(self):
        sweep = build_sweep("mixed_classes", scale=TINY)
        assert len(sweep) == 3 * len(TINY.offered_loads)
        labels = {cell.label for cell in sweep.cells}
        assert labels == {"without control", "IS control", "PA control"}
        for cell in sweep.cells:
            assert cell.kind == KIND_STATIONARY
            oltp, query = cell.workload_classes
            assert oltp.accesses_per_txn < query.accesses_per_txn
            assert oltp.write_fraction > 0.0
            assert query.is_query

    def test_mixed_classes_runs_under_each_controller(self):
        result = run_sweep("mixed_classes", scale=TINY)
        assert len(result.results) == 3 * len(TINY.offered_loads)
        assert all(r.metrics["throughput"] > 0 for r in result.results)

    def test_mixed_classes_weight_validated(self):
        with pytest.raises(ValueError, match="oltp_weight"):
            build_sweep("mixed_classes", scale=TINY, oltp_weight=1.0)

    def test_unknown_scenario_raises_with_listing(self):
        with pytest.raises(KeyError, match="fig12_stationary"):
            get_scenario("does_not_exist")

    def test_fig12_structure(self):
        sweep = build_sweep("fig12_stationary", scale=TINY)
        assert len(sweep) == 3 * len(TINY.offered_loads)
        assert all(cell.kind == KIND_STATIONARY for cell in sweep.cells)
        labels = {cell.label for cell in sweep.cells}
        assert labels == {"without control", "IS control", "PA control"}

    def test_tracking_scenarios_structure(self):
        fig13 = build_sweep("fig13_is_jump", scale=TINY)
        assert [cell.label for cell in fig13.cells] == ["IS"]
        fig14 = build_sweep("fig14_pa_jump", scale=TINY)
        assert [cell.label for cell in fig14.cells] == ["PA", "IS"]
        sinusoid = build_sweep("sinusoid", scale=TINY)
        assert {cell.label for cell in sinusoid.cells} == {"IS", "PA"}
        assert all(cell.kind == KIND_TRACKING
                   for cell in fig13.cells + fig14.cells + sinusoid.cells)

    def test_jump_time_follows_scale(self):
        sweep = build_sweep("fig13_is_jump", scale=TINY)
        _parameter, schedule = sweep.cells[0].scenario
        assert schedule.jump_time == TINY.tracking_horizon / 2.0
        assert schedule.before == 4
        assert schedule.after == 16


class TestRunSweep:
    def test_registry_run_matches_sweep_offered_load(self):
        """Acceptance: the registry path equals the classic serial sweep."""
        result = run_sweep("thrashing", scale=TINY, workers=4)
        (registry_sweep,) = stationary_sweeps(result).values()

        from repro.experiments.config import default_system_params

        classic = sweep_offered_load(default_system_params(), None, scale=TINY,
                                     label="without control")
        assert [p.offered_load for p in registry_sweep.points] == \
            [p.offered_load for p in classic.points]
        for ours, theirs in zip(registry_sweep.points, classic.points):
            assert ours.throughput == theirs.throughput
            assert ours.commits == theirs.commits
            assert ours.mean_response_time == theirs.mean_response_time
        assert registry_sweep.model_reference == classic.model_reference

    def test_replicated_run_reports_ci(self):
        result = run_sweep("thrashing", scale=TINY, replicates=5)
        assert result.replicates == 5
        for aggregate in result.aggregates:
            throughput = aggregate.metric("throughput")
            assert throughput.count == 5
            assert throughput.ci_half_width > 0.0
            assert "±" in throughput.format()
        (sweep,) = stationary_sweeps(result).values()
        assert isinstance(sweep, StationarySweep)
        assert set(sweep.aggregates) == {10, 30}

    def test_tracking_results_conversion(self):
        result = run_sweep("fig13_is_jump", scale=TINY)
        trajectories = tracking_results(result)
        assert list(trajectories) == ["IS"]
        assert trajectories["IS"].total_commits > 0

    def test_tracking_results_label_collision_keeps_every_cell(self):
        from repro.experiments.config import contention_bound_params
        from repro.experiments.dynamic import jump_scenario, tracking_sweep_spec
        from repro.runner.specs import SweepSpec

        scenario = jump_scenario("accesses", 4, 8, jump_time=TINY.tracking_horizon / 2)
        params = contention_bound_params(seed=17)
        first = tracking_sweep_spec({"IS": ControllerSpec.make("incremental_steps")},
                                    scenario, base_params=params, scale=TINY, name="a")
        second = tracking_sweep_spec({"IS": ControllerSpec.make("incremental_steps")},
                                     scenario, base_params=params, scale=TINY, name="b")
        merged = SweepSpec(name="merged", cells=first.cells + second.cells)
        trajectories = tracking_results(run_sweep(merged))
        # an ambiguous label keys every affected cell by its unique cell id
        assert set(trajectories) == {"a/IS", "b/IS"}

    def test_overrides_reach_the_builder(self):
        sweep = build_sweep("fig13_is_jump", scale=TINY, jump_before=2, jump_after=20)
        _parameter, schedule = sweep.cells[0].scenario
        assert schedule.before == 2
        assert schedule.after == 20

    def test_unknown_override_rejected(self):
        # a typoed or unsupported override must not silently run the
        # default experiment
        with pytest.raises(TypeError, match="jump_befor"):
            build_sweep("fig13_is_jump", scale=TINY, jump_befor=2)
        with pytest.raises(TypeError, match="jump_before"):
            build_sweep("thrashing", scale=TINY, jump_before=8)

    def test_spec_with_scenario_kwargs_rejected(self):
        spec = build_sweep("thrashing", scale=TINY)
        with pytest.raises(TypeError, match="named scenarios"):
            run_sweep(spec, scale=TINY)

    def test_sweep_offered_load_controller_spec_parallel(self):
        sweep = sweep_offered_load(
            controller_factory=ControllerSpec.make("parabola"),
            scale=TINY, label="PA", workers=2)
        assert [point.offered_load for point in sweep.points] == [10, 30]
        serial = sweep_offered_load(
            controller_factory=ControllerSpec.make("parabola"),
            scale=TINY, label="PA", workers=0)
        assert [p.throughput for p in sweep.points] == \
            [p.throughput for p in serial.points]
