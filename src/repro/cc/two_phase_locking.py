"""The strict two-phase locking family: shared machinery, three resolutions.

The paper distinguishes two classes of concurrency control (Section 1):
blocking schemes (two-phase locking), for which Tay et al. (1985) derive the
quadratic blocking behaviour, and non-blocking schemes (timestamp
certification), which the paper's own simulation uses.  The load control
algorithms are claimed to be applicable to both classes, so this module
provides the blocking representatives.

All members of the family share the same lock table, FCFS queue and grant
machinery (:class:`LockingScheme`); they differ *only* in how a conflict is
resolved when a request cannot be granted (the :meth:`LockingScheme._block`
hook):

* :class:`TwoPhaseLocking` — *deadlock detection*: the request waits, a
  waits-for graph is checked for cycles, and a victim on each cycle is
  aborted (``victim_policy``: ``youngest`` / ``oldest`` / ``fewest_locks``);
* :class:`WoundWaitLocking` — *wound-wait* (Rosenkrantz et al. 1978): an
  older requester wounds every younger conflicting transaction (the victim
  aborts with :attr:`~repro.cc.base.AbortReason.WOUND`) and then waits; a
  younger requester simply waits.  Deadlock-free: persistent wait edges run
  young → old only, and a wounded transaction never enters a wait;
* :class:`WaitDieLocking` — *wait-die*: an older requester waits, a younger
  requester aborts itself immediately
  (:attr:`~repro.cc.base.AbortReason.DIE`).  Deadlock-free: wait edges run
  old → young only.

Shared machinery:

* a lock table maps each granule to its holders (with their modes) and an
  FCFS queue of waiting requests;
* shared (S) locks are granted concurrently, exclusive (X) locks require
  sole ownership; lock upgrades (S -> X) are supported and take priority
  over waiting requests from other transactions;
* waiting requests are represented as simulation events so a blocked
  transaction simply ``yield``s on the grant (or has
  :class:`~repro.cc.base.TransactionAborted` thrown into it).

The timestamp-priority variants order transactions by their *first* start:
a restarted execution keeps its original priority, so a victim ages into
the oldest transaction and cannot starve.  Wounds are delivered immediately
to blocked victims (their wait event fails) and lazily to running ones (the
victim aborts at its next ``access``); a wounded transaction that reaches
its commit point without another access is allowed to commit — strict 2PL
already guarantees serializability, wounding exists purely to keep the
waits-for graph acyclic, and a committing victim releases its locks just as
fast as an aborting one.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Optional, Set

from repro.cc.base import AbortReason, ConcurrencyControl, TransactionAborted
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.tp.transaction import Transaction


class LockMode(enum.Enum):
    """Lock modes of the strict 2PL scheme."""

    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _LockRequest:
    """A waiting lock request for one granule."""

    txn_id: int
    mode: LockMode
    event: Event
    cancelled: bool = False


@dataclass
class _LockState:
    """Holders and waiters of a single granule."""

    holders: Dict[int, LockMode] = field(default_factory=dict)
    waiters: Deque[_LockRequest] = field(default_factory=deque)


class LockingScheme(ConcurrencyControl):
    """Shared lock-table machinery of the strict 2PL family.

    Subclasses implement exactly one decision — :meth:`_block`, called when
    a request is incompatible with the current holders/queue — and inherit
    the grant, upgrade, release and cancellation mechanics unchanged, so
    the variants differ only in conflict resolution, never in lock
    semantics.
    """

    name = "locking"

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._locks: Dict[int, _LockState] = {}
        #: txn_id -> set of granules it currently holds locks on
        self._held: Dict[int, Set[int]] = {}
        #: txn_id -> granule it is currently waiting for (at most one)
        self._waiting_for_item: Dict[int, int] = {}
        #: txn_id -> start time of the current execution
        self._start_time: Dict[int, float] = {}
        # statistics
        self.lock_requests = 0
        self.lock_waits = 0

    # ------------------------------------------------------------------
    # ConcurrencyControl interface
    # ------------------------------------------------------------------
    def begin(self, txn: "Transaction") -> None:
        """Register a fresh execution with no locks held."""
        self._held.setdefault(txn.txn_id, set())
        self._start_time[txn.txn_id] = self.sim.now

    def access(self, txn: "Transaction", item: int, is_write: bool) -> Optional[Event]:
        """Acquire an S or X lock on ``item``; may return a wait event."""
        mode = LockMode.EXCLUSIVE if is_write else LockMode.SHARED
        if is_write:
            txn.write_set.add(item)
            txn.read_set.add(item)
        else:
            txn.read_set.add(item)
        return self._acquire(txn.txn_id, item, mode)

    def try_commit(self, txn: "Transaction") -> bool:
        """2PL serializes by blocking: a transaction reaching commit always commits."""
        return True

    def finish(self, txn: "Transaction") -> None:
        """Release all locks at commit (strictness)."""
        self._release_all(txn.txn_id)

    def abort(self, txn: "Transaction", reason: AbortReason) -> None:
        """Release all locks and withdraw any pending request."""
        self._cancel_waiting(txn.txn_id)
        self._release_all(txn.txn_id)

    def active_count(self) -> int:
        """Transactions currently holding or waiting for locks.

        A transaction that holds locks while waiting for another counts
        once (the sets overlap for every blocked-but-not-empty-handed
        transaction, which is the common case under contention).
        """
        active = {txn for txn, items in self._held.items() if items}
        active.update(self._waiting_for_item)
        return len(active)

    def wait_depth(self) -> int:
        """Transactions blocked on a lock (the waits-for structure's size)."""
        return self.blocked_count

    def reset(self) -> None:
        """Drop the whole lock table (between experiment repetitions)."""
        self._locks.clear()
        self._held.clear()
        self._waiting_for_item.clear()
        self._start_time.clear()
        self.lock_requests = 0
        self.lock_waits = 0

    # ------------------------------------------------------------------
    # conflict resolution hook
    # ------------------------------------------------------------------
    def _block(self, txn_id: int, item: int, mode: LockMode,
               state: _LockState) -> Optional[Event]:
        """Resolve a conflict: the request cannot be granted right now.

        Implementations may enqueue the request and return its wait event
        (possibly after sacrificing other transactions), or raise
        :class:`~repro.cc.base.TransactionAborted` to abort the requester
        itself.  Returning ``None`` means the conflict disappeared and the
        lock was granted after all (wound-wait after clearing the queue).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # lock table mechanics (shared by every variant)
    # ------------------------------------------------------------------
    @property
    def blocked_count(self) -> int:
        """Number of transactions currently blocked on a lock."""
        return len(self._waiting_for_item)

    def holders_of(self, item: int) -> Dict[int, LockMode]:
        """Current holders of ``item`` (copy)."""
        state = self._locks.get(item)
        return dict(state.holders) if state else {}

    def _acquire(self, txn_id: int, item: int, mode: LockMode) -> Optional[Event]:
        self.lock_requests += 1
        state = self._locks.setdefault(item, _LockState())
        return self._grant_or(txn_id, item, mode, state, self._block)

    def _try_grant(self, txn_id: int, item: int, mode: LockMode,
                   state: _LockState) -> Optional[Event]:
        """Re-run the grant decision (no request counting) or enqueue.

        Used by conflict resolutions that may have *changed* the lock state
        (wound-wait cancelling queued victims) and must re-check whether
        the request became grantable before committing to a wait.  Falls
        back to a plain enqueue — re-entering the conflict resolution here
        could recurse forever.
        """
        return self._grant_or(txn_id, item, mode, state, self._enqueue)

    def _grant_or(self, txn_id: int, item: int, mode: LockMode,
                  state: _LockState, blocked) -> Optional[Event]:
        """The one grant/upgrade decision; ``blocked`` handles conflicts.

        A single body keeps the family's promise that the variants differ
        only in conflict resolution: the held-mode short-circuit, the
        sole-holder upgrade and the compatibility grant cannot drift apart
        between the first attempt and wound-wait's re-check.
        """
        held_mode = state.holders.get(txn_id)
        if held_mode is not None:
            if held_mode == LockMode.EXCLUSIVE or mode == LockMode.SHARED:
                return None  # already strong enough
            # upgrade S -> X: possible immediately iff we are the only holder
            if len(state.holders) == 1:
                state.holders[txn_id] = LockMode.EXCLUSIVE
                return None
            return blocked(txn_id, item, mode, state)
        if self._compatible(state, mode):
            state.holders[txn_id] = mode
            self._held.setdefault(txn_id, set()).add(item)
            return None
        return blocked(txn_id, item, mode, state)

    def _compatible(self, state: _LockState, mode: LockMode) -> bool:
        if not state.holders:
            # grant only if no one is already waiting (FCFS, no barging)
            return not state.waiters
        if state.waiters:
            return False
        if mode == LockMode.SHARED:
            return all(m == LockMode.SHARED for m in state.holders.values())
        return False

    def _enqueue(self, txn_id: int, item: int, mode: LockMode, state: _LockState) -> Event:
        """Append a waiting request and return its grant event."""
        self.lock_waits += 1
        event = Event(self.sim)
        state.waiters.append(_LockRequest(txn_id, mode, event))
        self._waiting_for_item[txn_id] = item
        return event

    def _release_all(self, txn_id: int) -> None:
        items = self._held.pop(txn_id, set())
        self._start_time.pop(txn_id, None)
        for item in items:
            state = self._locks.get(item)
            if state is None:
                continue
            state.holders.pop(txn_id, None)
            self._grant_waiters(item, state)
            if not state.holders and not state.waiters:
                del self._locks[item]

    def _grant_waiters(self, item: int, state: _LockState) -> None:
        while state.waiters:
            head = state.waiters[0]
            if head.cancelled:
                state.waiters.popleft()
                continue
            if head.mode == LockMode.EXCLUSIVE:
                other_holders = [t for t in state.holders if t != head.txn_id]
                if other_holders:
                    return
            else:
                if any(m == LockMode.EXCLUSIVE for m in state.holders.values()):
                    return
            state.waiters.popleft()
            state.holders[head.txn_id] = head.mode
            self._held.setdefault(head.txn_id, set()).add(item)
            self._waiting_for_item.pop(head.txn_id, None)
            head.event.succeed(head.mode)

    def _cancel_waiting(self, txn_id: int) -> None:
        item = self._waiting_for_item.pop(txn_id, None)
        if item is None:
            return
        state = self._locks.get(item)
        if state is None:
            return
        for request in state.waiters:
            if request.txn_id == txn_id and not request.cancelled:
                request.cancelled = True
        self._grant_waiters(item, state)

    def _fail_waiter(self, txn_id: int, item: int, error: TransactionAborted) -> bool:
        """Fail a victim's pending request so its process aborts itself."""
        state = self._locks.get(item)
        if state is None:
            return False
        for request in state.waiters:
            if request.txn_id == txn_id and not request.cancelled:
                request.cancelled = True
                self._waiting_for_item.pop(txn_id, None)
                request.event.fail(error)
                self._grant_waiters(item, state)
                return True
        return False

    def _blockers_of(self, txn_id: int, state: _LockState) -> list:
        """The transactions a fresh request on ``state`` would wait for.

        Holders other than the requester plus every queued (non-cancelled)
        waiter: FCFS means a new request also waits for everything already
        in the queue.  Deduplicated (order-preserving): a transaction that
        both holds the granule and queues for an upgrade is one blocker,
        so wound-wait sacrifices — and counts — it exactly once.
        """
        blockers = dict.fromkeys(t for t in state.holders if t != txn_id)
        for request in state.waiters:
            if not request.cancelled and request.txn_id != txn_id:
                blockers[request.txn_id] = None
        return list(blockers)


class TwoPhaseLocking(LockingScheme):
    """Strict two-phase locking (blocking CC) with deadlock detection.

    Conflict resolution: the request always waits; a waits-for graph is
    maintained incrementally, a cycle check runs whenever a transaction
    blocks, and a victim on the cycle (selected by ``victim_policy``) is
    aborted — its pending request event fails with
    :class:`~repro.cc.base.TransactionAborted`.
    """

    name = "two-phase-locking"

    def __init__(self, sim: Simulator, victim_policy: str = "youngest"):
        if victim_policy not in ("youngest", "oldest", "fewest_locks"):
            raise ValueError(f"unknown victim policy {victim_policy!r}")
        super().__init__(sim)
        self.victim_policy = victim_policy
        self.deadlocks = 0

    def reset(self) -> None:
        """Drop the whole lock table (between experiment repetitions)."""
        super().reset()
        self.deadlocks = 0

    # ------------------------------------------------------------------
    # conflict resolution: wait, then hunt for cycles
    # ------------------------------------------------------------------
    def _block(self, txn_id: int, item: int, mode: LockMode, state: _LockState) -> Event:
        event = self._enqueue(txn_id, item, mode, state)
        # A single block can close SEVERAL cycles at once: the FCFS edges
        # (waiting for earlier waiters of the same granule) run in parallel
        # to the direct holder edges, so aborting the victim of the first
        # cycle found may leave another cycle through the same granule
        # intact — and no further blocking event would ever re-trigger
        # detection for it.  Re-detect until the requester's reachable
        # graph is cycle-free (each round aborts one waiter, so this
        # terminates); once the requester itself is sacrificed it no longer
        # waits and the loop ends naturally.
        victim = self._detect_deadlock(txn_id)
        while victim is not None:
            self.deadlocks += 1
            self._abort_waiter(victim, item_hint=item)
            victim = self._detect_deadlock(txn_id)
        return event

    # ------------------------------------------------------------------
    # deadlock handling
    # ------------------------------------------------------------------
    def _waits_for(self, txn_id: int) -> Set[int]:
        """Transactions that ``txn_id`` currently waits for."""
        item = self._waiting_for_item.get(txn_id)
        if item is None:
            return set()
        state = self._locks.get(item)
        if state is None:
            return set()
        blockers = {t for t in state.holders if t != txn_id}
        # FCFS: also wait for earlier waiters of the same granule
        for request in state.waiters:
            if request.txn_id == txn_id:
                break
            if not request.cancelled:
                blockers.add(request.txn_id)
        return blockers

    def _detect_deadlock(self, start: int) -> Optional[int]:
        """DFS from ``start`` in the waits-for graph; return a victim or None."""
        path: list[int] = []
        on_path: Set[int] = set()
        visited: Set[int] = set()

        def dfs(node: int) -> Optional[list[int]]:
            path.append(node)
            on_path.add(node)
            for successor in self._waits_for(node):
                if successor in on_path:
                    return path[path.index(successor):]
                if successor not in visited:
                    cycle = dfs(successor)
                    if cycle is not None:
                        return cycle
            on_path.discard(node)
            visited.add(node)
            path.pop()
            return None

        cycle = dfs(start)
        if cycle is None:
            return None
        return self._select_victim(cycle)

    def _select_victim(self, cycle: list[int]) -> int:
        if self.victim_policy == "youngest":
            return max(cycle, key=lambda t: self._start_time.get(t, 0.0))
        if self.victim_policy == "oldest":
            return min(cycle, key=lambda t: self._start_time.get(t, 0.0))
        return min(cycle, key=lambda t: len(self._held.get(t, ())))

    def _abort_waiter(self, txn_id: int, item_hint: int) -> None:
        """Fail the victim's pending request so its process aborts itself."""
        item = self._waiting_for_item.get(txn_id, item_hint)
        self._fail_waiter(txn_id, item, TransactionAborted(
            AbortReason.DEADLOCK, f"victim of deadlock on granule {item}"))


class _TimestampPriorityLocking(LockingScheme):
    """Common base of the deadlock-*avoiding* timestamp-priority variants.

    Every transaction receives a priority when it first begins — a monotone
    counter, so "older" is well defined even when two executions start at
    the same simulated instant — and *keeps it across restarts*: a victim
    ages until it is the oldest transaction in the system, which is what
    makes wound-wait and wait-die starvation-free.
    """

    def __init__(self, sim: Simulator):
        super().__init__(sim)
        #: txn_id -> priority (smaller = older); survives restarts
        self._priority: Dict[int, int] = {}
        self._next_priority = 0

    def begin(self, txn: "Transaction") -> None:
        """Register the execution; first-ever begin assigns the priority."""
        super().begin(txn)
        if txn.txn_id not in self._priority:
            self._priority[txn.txn_id] = self._next_priority
            self._next_priority += 1

    def finish(self, txn: "Transaction") -> None:
        """Release locks and retire the committed transaction's priority."""
        super().finish(txn)
        self._priority.pop(txn.txn_id, None)

    def abort(self, txn: "Transaction", reason: AbortReason) -> None:
        """Release locks; keep the priority so a restarting victim ages.

        Displacement is the exception: the transaction leaves by controller
        decision, not by losing a conflict, and may never come back
        (``resubmit_displaced=False``) — retiring the priority there keeps
        the table bounded.  A resubmitted displaced transaction simply
        starts over as the youngest, which costs it fairness it was not
        owed: it was never a wound/die victim.
        """
        super().abort(txn, reason)
        if reason is AbortReason.DISPLACEMENT:
            self._priority.pop(txn.txn_id, None)

    def reset(self) -> None:
        super().reset()
        self._priority.clear()
        self._next_priority = 0

    def priority_of(self, txn_id: int) -> Optional[int]:
        """The transaction's priority (smaller = older), if it has one."""
        return self._priority.get(txn_id)


class WoundWaitLocking(_TimestampPriorityLocking):
    """Wound-wait 2PL: an older requester wounds younger conflicting txns.

    On conflict, every conflicting transaction *younger* than the requester
    is wounded: a blocked victim has its wait event failed immediately, a
    running victim is marked and aborts at its next ``access`` (it never
    enters another wait).  The requester then re-checks the — possibly
    cleared — queue and waits if still necessary; a requester younger than
    all conflicting transactions simply waits.  No waits-for graph is ever
    built: persistent wait edges run young → old only, so cycles cannot
    form.
    """

    name = "wound-wait"

    def __init__(self, sim: Simulator):
        super().__init__(sim)
        #: running transactions with a pending wound (die at next access)
        self._wounded: Set[int] = set()
        self.wounds = 0

    def access(self, txn: "Transaction", item: int, is_write: bool) -> Optional[Event]:
        """Deliver a pending wound before the access happens."""
        if txn.txn_id in self._wounded:
            raise TransactionAborted(
                AbortReason.WOUND,
                f"wound delivered before access to granule {item}")
        return super().access(txn, item, is_write)

    def abort(self, txn: "Transaction", reason: AbortReason) -> None:
        """The abort consumes any pending wound (the restart is innocent)."""
        super().abort(txn, reason)
        self._wounded.discard(txn.txn_id)

    def finish(self, txn: "Transaction") -> None:
        """Commit immunity: a wounded txn reaching commit simply finishes."""
        super().finish(txn)
        self._wounded.discard(txn.txn_id)

    def reset(self) -> None:
        """Clear pending wounds and the wound counter with the lock table."""
        super().reset()
        self._wounded.clear()
        self.wounds = 0

    def _block(self, txn_id: int, item: int, mode: LockMode,
               state: _LockState) -> Optional[Event]:
        priority = self._priority[txn_id]
        for other in self._blockers_of(txn_id, state):
            other_priority = self._priority.get(other)
            if other_priority is not None and other_priority > priority:
                self._wound(other)
        # wounded waiters were cancelled (and grants may have cascaded), so
        # the request may have become grantable — never wait on a clear queue
        return self._try_grant(txn_id, item, mode, state)

    def _wound(self, victim: int) -> None:
        """Abort ``victim`` now if blocked, at its next access otherwise."""
        item = self._waiting_for_item.get(victim)
        if item is not None:
            self.wounds += 1
            self._fail_waiter(victim, item, TransactionAborted(
                AbortReason.WOUND,
                f"wounded by an older transaction while waiting on granule {item}"))
        elif victim not in self._wounded:
            self.wounds += 1
            self._wounded.add(victim)


class WaitDieLocking(_TimestampPriorityLocking):
    """Wait-die 2PL: a younger requester dies instead of waiting.

    On conflict the requester waits only if it is *older* than every
    conflicting transaction; otherwise it aborts itself on the spot
    (``access`` raises :class:`~repro.cc.base.TransactionAborted` with
    :attr:`~repro.cc.base.AbortReason.DIE`) and restarts with its original
    priority.  Wait edges run old → young only, so cycles cannot form and
    no victim is ever chosen among *other* transactions.
    """

    name = "wait-die"

    def __init__(self, sim: Simulator):
        super().__init__(sim)
        self.deaths = 0

    def reset(self) -> None:
        """Clear the death counter with the lock table."""
        super().reset()
        self.deaths = 0

    def _block(self, txn_id: int, item: int, mode: LockMode, state: _LockState) -> Event:
        priority = self._priority[txn_id]
        for other in self._blockers_of(txn_id, state):
            other_priority = self._priority.get(other)
            if other_priority is not None and other_priority < priority:
                self.deaths += 1
                raise TransactionAborted(
                    AbortReason.DIE,
                    f"wait-die: younger than a conflicting transaction "
                    f"on granule {item}")
        return self._enqueue(txn_id, item, mode, state)
