"""Randomized property tests for the two-phase locking scheme's invariants.

``tests/cc/test_two_phase_locking.py`` pins *specific* lock-table
interactions; these tests pin the scheme's *semantic invariants* on
randomly generated schedules, in the style of
``tests/sim/test_engine_properties.py``: transactions run as simulation
processes over a deliberately tiny database (so conflicts, waits and
deadlocks are frequent), and all randomness comes from seeded
:mod:`random` (stdlib) instances, so runs are fully reproducible.

Invariants covered:

* **mode compatibility at every grant** — a granule's holders are either
  all shared or exactly one exclusive owner, at every point a lock is
  acquired;
* **lock-grant conservation** — when every transaction has finished, the
  lock table is empty: no holders, no waiters, no active registrations,
  whatever mix of commits, voluntary aborts and deadlock aborts occurred;
* **no grants after release** — a transaction that released its locks
  (commit or final abort) never reappears as a holder;
* **deadlock victims always make progress** — under every victim policy,
  every transaction of a write-heavy closed workload eventually commits:
  victim selection plus restart may delay a transaction but can never
  starve it into livelock.
"""

import random

import pytest

from repro.cc.base import AbortReason, TransactionAborted
from repro.cc.two_phase_locking import LockMode, TwoPhaseLocking
from repro.sim.engine import Simulator
from repro.tp.transaction import Transaction, TransactionClass

SEEDS = [3, 11, 42, 2024]

#: granules of the property-test database: small enough that random
#: transactions collide constantly
N_ITEMS = 12


def make_txn(txn_id, items, writes=()):
    flags = tuple(item in writes for item in items)
    cls = TransactionClass.UPDATER if any(flags) else TransactionClass.QUERY
    return Transaction(
        txn_id=txn_id,
        terminal_id=0,
        txn_class=cls,
        items=tuple(items),
        write_flags=flags,
    )


def assert_mode_compatible(cc, item):
    """A granule is held all-shared or by exactly one exclusive owner."""
    holders = cc.holders_of(item)
    if LockMode.EXCLUSIVE in holders.values():
        assert len(holders) == 1, (
            f"granule {item} held exclusively but shared: {holders}"
        )


def random_workload(rng, txn_id, write_probability=0.5, max_items=4):
    size = rng.randint(1, max_items)
    items = rng.sample(range(N_ITEMS), size)
    writes = [item for item in items if rng.random() < write_probability]
    if not writes and write_probability >= 1.0:
        writes = list(items)
    return make_txn(txn_id, items, writes)


@pytest.mark.parametrize("seed", SEEDS)
def test_lock_grant_conservation_under_random_schedules(seed):
    """Whatever happens, the lock table drains to empty at the end."""
    rng = random.Random(seed)
    sim = Simulator()
    cc = TwoPhaseLocking(sim)
    finished = []

    def transaction(txn_id):
        attempts = 0
        while True:
            attempts += 1
            assert attempts < 500, f"txn {txn_id} livelocked"
            txn = random_workload(rng, txn_id)
            cc.begin(txn)
            try:
                for item, is_write in txn.accesses:
                    grant = cc.access(txn, item, is_write)
                    if grant is not None:
                        yield grant
                    assert txn_id in cc.holders_of(item), "grant without holdership"
                    assert_mode_compatible(cc, item)
                    yield sim.timeout(rng.random() * 0.1)
                if rng.random() < 0.15:
                    # a voluntary abort (e.g. displacement) must clean up too
                    cc.abort(txn, AbortReason.DISPLACEMENT)
                else:
                    assert cc.try_commit(txn), "2PL reaching commit always commits"
                    cc.finish(txn)
                finished.append(txn_id)
                return
            except TransactionAborted as aborted:
                assert aborted.reason is AbortReason.DEADLOCK
                cc.abort(txn, aborted.reason)
                yield sim.timeout(rng.random() * 0.05)

    n_transactions = 25
    for txn_id in range(n_transactions):
        sim.process(transaction(txn_id))
    sim.run(until=10_000.0)

    assert len(finished) == n_transactions, "every transaction must terminate"
    # conservation: nothing is held, nothing waits, nothing is registered
    assert cc.active_count() == 0
    assert cc.blocked_count == 0
    for item in range(N_ITEMS):
        assert cc.holders_of(item) == {}, f"granule {item} leaked holders"
    assert cc.lock_requests >= n_transactions
    assert cc.lock_waits > 0, "the tiny database must force real waits"


@pytest.mark.parametrize("seed", SEEDS)
def test_no_grants_after_release(seed):
    """A transaction that released its locks never reappears as a holder."""
    rng = random.Random(seed)
    sim = Simulator()
    cc = TwoPhaseLocking(sim)
    released = set()

    def scan_for_released():
        for item in range(N_ITEMS):
            for holder in cc.holders_of(item):
                assert holder not in released, (
                    f"txn {holder} granted a lock on {item} after releasing"
                )

    def transaction(txn_id):
        while True:
            txn = random_workload(rng, txn_id)
            cc.begin(txn)
            try:
                for item, is_write in txn.accesses:
                    grant = cc.access(txn, item, is_write)
                    if grant is not None:
                        yield grant
                    yield sim.timeout(rng.random() * 0.1)
                assert cc.try_commit(txn)
                released.add(txn_id)
                cc.finish(txn)
                return
            except TransactionAborted as aborted:
                cc.abort(txn, aborted.reason)
                yield sim.timeout(rng.random() * 0.05)

    def monitor():
        while True:
            scan_for_released()
            yield sim.timeout(0.05)

    for txn_id in range(20):
        sim.process(transaction(txn_id))
    sim.process(monitor())
    sim.run(until=10_000.0)

    assert len(released) == 20
    scan_for_released()


@pytest.mark.parametrize("policy", ["youngest", "oldest", "fewest_locks"])
@pytest.mark.parametrize("seed", SEEDS)
def test_deadlock_victims_always_make_progress(seed, policy):
    """Under every victim policy, a write-heavy workload fully commits.

    All-write transactions over six granules deadlock constantly; victim
    selection (and the restart that follows) must never starve any of
    them — in particular the ``oldest`` policy must not re-sacrifice one
    transaction forever.
    """
    rng = random.Random(seed * 7 + len(policy))
    sim = Simulator()
    cc = TwoPhaseLocking(sim, victim_policy=policy)
    committed = []
    deadlock_aborts = [0]

    def transaction(txn_id):
        attempts = 0
        while True:
            attempts += 1
            assert attempts < 500, f"txn {txn_id} starved under {policy!r}"
            size = rng.randint(2, 3)
            items = rng.sample(range(6), size)
            txn = make_txn(txn_id, items, writes=items)
            cc.begin(txn)
            try:
                for item, is_write in txn.accesses:
                    grant = cc.access(txn, item, is_write)
                    if grant is not None:
                        yield grant
                    yield sim.timeout(0.01 + rng.random() * 0.05)
                assert cc.try_commit(txn)
                cc.finish(txn)
                committed.append(txn_id)
                return
            except TransactionAborted as aborted:
                assert aborted.reason is AbortReason.DEADLOCK
                deadlock_aborts[0] += 1
                cc.abort(txn, aborted.reason)
                yield sim.timeout(rng.random() * 0.02)

    n_transactions = 15
    for txn_id in range(n_transactions):
        sim.process(transaction(txn_id))
    sim.run(until=10_000.0)

    assert sorted(committed) == list(range(n_transactions))
    # the workload is contended enough that victims were actually selected
    assert cc.deadlocks > 0
    assert deadlock_aborts[0] == cc.deadlocks
    assert cc.active_count() == 0
    assert cc.blocked_count == 0
