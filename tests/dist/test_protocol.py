"""Framing tests for the coordinator/worker wire protocol."""

import socket
import struct
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.displacement import VictimCriterion
from repro.dist import protocol
from repro.dist.protocol import (
    HEADER,
    ConnectionClosed,
    ProtocolError,
    format_address,
    parse_address,
    recv_message,
    send_message,
)
from repro.experiments.config import ExperimentScale
from repro.runner.registry import build_sweep


def _roundtrip(messages):
    """Send ``messages`` over a real socket pair, return what arrives."""
    left, right = socket.socketpair()
    received = []
    try:
        def reader():
            for _ in messages:
                received.append(recv_message(right))

        thread = threading.Thread(target=reader)
        thread.start()
        for message in messages:
            send_message(left, message)
        thread.join(timeout=30)
        assert not thread.is_alive(), "reader did not drain all frames"
    finally:
        left.close()
        right.close()
    return received


#: nested JSON-ish payloads exercising arbitrary pickle structures
_payloads = st.recursive(
    st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False)
    | st.text(max_size=20) | st.binary(max_size=64),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


class TestFramingRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_payloads, min_size=1, max_size=6))
    def test_arbitrary_payloads_roundtrip(self, messages):
        assert _roundtrip(messages) == messages

    def test_frame_boundaries_survive_interleaving(self):
        # many small frames in one stream: each recv_message must stop at
        # exactly its own frame boundary
        messages = [("msg", index, "x" * index) for index in range(64)]
        assert _roundtrip(messages) == messages

    def test_large_frame_is_chunked_correctly(self):
        # several MiB: exercises the recv_exact reassembly loop and the
        # sendall path well past any single TCP segment
        blob = np.random.default_rng(7).integers(0, 256, size=3 << 20,
                                                 dtype=np.uint8).tobytes()
        [received] = _roundtrip([("blob", blob)])
        assert received == ("blob", blob)

    def test_numpy_and_runspec_payloads(self):
        spec = build_sweep("thrashing", scale=ExperimentScale.smoke())
        array = np.arange(12.0).reshape(3, 4)
        received = _roundtrip([("cells", spec.cells), ("array", array)])
        assert received[0] == ("cells", spec.cells)
        np.testing.assert_array_equal(received[1][1], array)

    def test_displacement_policy_and_cc_spec_runspecs_roundtrip(self):
        """The post-dist sweep dimensions survive the wire protocol intact.

        ``displacement_policies`` cells carry a
        :class:`~repro.core.displacement.DisplacementPolicy` (with its
        :class:`~repro.core.displacement.VictimCriterion`), ``cc_compare``
        cells a :class:`~repro.cc.registry.CCSpec`; a coordinator ships
        exactly these specs to remote workers, so their framing round-trip
        must preserve every configuration field.
        """
        displacement_spec = build_sweep("displacement_policies",
                                        scale=ExperimentScale.smoke())
        cc_spec = build_sweep("cc_compare", scale=ExperimentScale.smoke())
        received = _roundtrip([("displacement", displacement_spec.cells),
                               ("cc", cc_spec.cells)])

        assert received[0] == ("displacement", displacement_spec.cells)
        _tag, arrived = received[0]
        for original, restored in zip(displacement_spec.cells, arrived):
            if original.displacement is None:
                assert restored.displacement is None
                continue
            assert restored.displacement is not original.displacement
            assert restored.displacement.criterion is original.displacement.criterion
            assert restored.displacement.hysteresis == original.displacement.hysteresis
            assert restored.displacement.enabled == original.displacement.enabled

        assert received[1] == ("cc", cc_spec.cells)
        for original, restored in zip(cc_spec.cells, received[1][1]):
            assert restored.cc == original.cc
            assert restored.cc.kind in ("timestamp_cert", "two_phase_locking")

    @pytest.mark.parametrize("criterion", list(VictimCriterion))
    def test_victim_criterion_pickle_identity(self, criterion):
        # enum members must unpickle to the *same* object, or criterion
        # comparisons inside a worker would silently misbehave
        import pickle

        assert pickle.loads(pickle.dumps(criterion)) is criterion


class TestFramingFailureModes:
    def test_eof_between_frames(self):
        left, right = socket.socketpair()
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_message(right)
        right.close()

    def test_eof_inside_a_frame(self):
        left, right = socket.socketpair()
        try:
            # announce 1000 bytes, deliver 10, hang up
            left.sendall(HEADER.pack(1000) + b"x" * 10)
            left.close()
            with pytest.raises(ConnectionClosed, match="990 of 1000"):
                recv_message(right)
        finally:
            right.close()

    def test_oversized_length_prefix_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(HEADER.pack(protocol.MAX_MESSAGE_BYTES + 1))
            with pytest.raises(ProtocolError, match="beyond"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_undecodable_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            garbage = b"\x00definitely not a pickle"
            left.sendall(HEADER.pack(len(garbage)) + garbage)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_header_is_eight_byte_big_endian(self):
        # the prefix layout is the wire contract; pin it explicitly
        assert HEADER.size == 8
        assert HEADER.pack(1) == struct.pack(">Q", 1)


class TestAddresses:
    def test_parse_and_format_roundtrip(self):
        assert parse_address("10.0.0.5:7077") == ("10.0.0.5", 7077)
        assert format_address(*parse_address("localhost:80")) == "localhost:80"

    def test_empty_host_means_all_interfaces(self):
        assert parse_address(":9000") == ("0.0.0.0", 9000)

    @pytest.mark.parametrize("bad", ["nocolon", "host:notaport", "host:70000"])
    def test_invalid_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)
