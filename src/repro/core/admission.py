"""Admission control gate (Section 4.3, Figure 5).

"The admission to the transaction processing system is controlled by a
'gate' that accepts an arriving transaction if and only if the actual load
``n`` is below the current threshold ``n*``.  Otherwise the transaction has
to wait in a FCFS queue.  Waiting transactions are admitted as soon as
``n < n*`` holds again."

The gate is the single point where the concurrency level is defined: a
transaction counts against ``n`` from the moment it is admitted until it
departs (commits or is displaced), *including* all restarted executions in
between — a restart does not go back through the gate, which matches the
paper's model where the load ``n`` is the number of transactions inside the
processing system.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Dict, Deque, Optional, Tuple

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.stats import TimeWeightedStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.tp.transaction import Transaction


class AdmissionShed(SimulationError):
    """An arrival was rejected outright instead of queued.

    Raised *through* the submit event (the gate fails the event with this
    exception), so the submitting process sees it at its ``yield`` — the
    open-system analogue of a busy signal.  Only tenants with a
    ``queue_quota`` can be shed; the classic closed model never sees this.
    """


class AdmissionGate:
    """FCFS admission queue in front of the transaction processing system.

    With ``tenant_quotas``/``tenant_queue_quotas`` the gate additionally
    enforces per-tenant caps: a tenant at its admission quota keeps its
    waiters queued even while the global threshold has room (admission
    stays FCFS *among eligible tenants*), and a tenant at its queue quota
    has further arrivals shed via :class:`AdmissionShed`.  Without quotas
    (the default) the per-tenant bookkeeping is skipped entirely, so the
    closed model pays nothing for the feature.
    """

    def __init__(self, sim: Simulator, initial_limit: float = math.inf,
                 name: str = "admission-gate",
                 tenant_quotas: Optional[Dict[str, int]] = None,
                 tenant_queue_quotas: Optional[Dict[str, int]] = None):
        if initial_limit < 1:
            raise ValueError(f"initial_limit must be >= 1, got {initial_limit}")
        self.sim = sim
        self.name = name
        self._limit = float(initial_limit)
        self._admitted: set[int] = set()
        self._waiting: Deque[Tuple["Transaction", Event]] = deque()
        # time-weighted statistics of the in-system load and the queue
        self.load_stats = TimeWeightedStats(sim.now, 0.0)
        self.queue_stats = TimeWeightedStats(sim.now, 0.0)
        self.total_admitted = 0
        self.total_departed = 0
        self.total_shed = 0
        self._quotas = dict(tenant_quotas) if tenant_quotas else None
        self._queue_quotas = dict(tenant_queue_quotas) if tenant_queue_quotas else None
        self._tenant_tracking = self._quotas is not None or self._queue_quotas is not None
        # per-tenant occupancy, maintained only when quotas are configured
        self._admitted_by_tenant: Dict[str, int] = {}
        self._waiting_by_tenant: Dict[str, int] = {}
        self.shed_by_tenant: Dict[str, int] = {}
        # tenant of each admitted transaction, so depart() can decrement
        self._tenant_of: Dict[int, str] = {}

    # ------------------------------------------------------------------
    @property
    def limit(self) -> float:
        """The current threshold ``n*``."""
        return self._limit

    @property
    def current_load(self) -> int:
        """The actual load ``n``: transactions admitted and not yet departed."""
        return len(self._admitted)

    @property
    def queue_length(self) -> int:
        """Transactions waiting in front of the gate."""
        return len(self._waiting)

    # ------------------------------------------------------------------
    def set_limit(self, new_limit: float) -> None:
        """Install a new threshold and admit waiters if it increased.

        Lowering the threshold below the current load does *not* evict
        admitted transactions; that is the job of the (optional) displacement
        policy.  Admission control alone "was responsive enough to prevent
        thrashing even with dramatically changing workloads" (Section 4.3).
        """
        if new_limit < 1:
            raise ValueError(f"limit must be >= 1, got {new_limit}")
        self._limit = float(new_limit)
        self._admit_waiters()

    def submit(self, txn: "Transaction") -> Event:
        """Ask for admission; the returned event succeeds when admitted.

        When the transaction's tenant has a configured queue quota and its
        waiting count is already at that cap, the event is *failed* with
        :class:`AdmissionShed` instead — the submitter sees the exception
        at its ``yield``.
        """
        event = Event(self.sim)
        if not self._tenant_tracking:
            if self.current_load < self._limit and not self._waiting:
                self._admit(txn, event)
            else:
                self._waiting.append((txn, event))
                self.queue_stats.update(self.sim.now, len(self._waiting))
            return event
        tenant = txn.tenant
        if (self.current_load < self._limit and not self._waiting
                and self._below_admission_quota(tenant)):
            self._admit(txn, event)
            return event
        cap = self._queue_quotas.get(tenant) if self._queue_quotas is not None else None
        if cap is not None and self._waiting_by_tenant.get(tenant, 0) >= cap:
            self.total_shed += 1
            self.shed_by_tenant[tenant] = self.shed_by_tenant.get(tenant, 0) + 1
            event.fail(AdmissionShed(
                f"tenant {tenant!r} queue quota {cap} exhausted"
            ))
            return event
        self._waiting.append((txn, event))
        self._waiting_by_tenant[tenant] = self._waiting_by_tenant.get(tenant, 0) + 1
        self.queue_stats.update(self.sim.now, len(self._waiting))
        # the queue head may belong to an over-quota tenant while this
        # arrival's tenant has room: give eligible waiters a chance now
        # instead of stalling them until the next departure
        self._admit_waiters()
        return event

    def depart(self, txn: "Transaction") -> None:
        """A transaction left the system (commit or displacement)."""
        if txn.txn_id not in self._admitted:
            raise SimulationError(
                f"transaction {txn.txn_id} departed without having been admitted"
            )
        self._admitted.discard(txn.txn_id)
        self.total_departed += 1
        if self._tenant_tracking:
            tenant = self._tenant_of.pop(txn.txn_id, "")
            self._admitted_by_tenant[tenant] = self._admitted_by_tenant.get(tenant, 1) - 1
        self.load_stats.update(self.sim.now, len(self._admitted))
        self._admit_waiters()

    def cancel(self, txn: "Transaction") -> bool:
        """Withdraw a waiting transaction (e.g. simulation shutdown).

        Returns True if the transaction was waiting and has been removed.
        """
        for index, (waiting_txn, event) in enumerate(self._waiting):
            if waiting_txn.txn_id == txn.txn_id:
                del self._waiting[index]
                if self._tenant_tracking:
                    self._waiting_by_tenant[waiting_txn.tenant] -= 1
                self.queue_stats.update(self.sim.now, len(self._waiting))
                if not event.triggered:
                    event.fail(SimulationError("admission request cancelled"))
                return True
        return False

    # ------------------------------------------------------------------
    def admitted_of_tenant(self, tenant: str) -> int:
        """Currently admitted transactions of ``tenant`` (quota runs only)."""
        return self._admitted_by_tenant.get(tenant, 0)

    def waiting_of_tenant(self, tenant: str) -> int:
        """Currently waiting transactions of ``tenant`` (quota runs only)."""
        return self._waiting_by_tenant.get(tenant, 0)

    def _below_admission_quota(self, tenant: str) -> bool:
        if self._quotas is None:
            return True
        quota = self._quotas.get(tenant)
        return quota is None or self._admitted_by_tenant.get(tenant, 0) < quota

    def _admit(self, txn: "Transaction", event: Event) -> None:
        self._admitted.add(txn.txn_id)
        self.total_admitted += 1
        if self._tenant_tracking:
            tenant = txn.tenant
            self._admitted_by_tenant[tenant] = self._admitted_by_tenant.get(tenant, 0) + 1
            self._tenant_of[txn.txn_id] = tenant
        txn.admitted_at = self.sim.now
        self.load_stats.update(self.sim.now, len(self._admitted))
        event.succeed(txn)

    def _admit_waiters(self) -> None:
        if not self._tenant_tracking:
            while self._waiting and self.current_load < self._limit:
                txn, event = self._waiting.popleft()
                self.queue_stats.update(self.sim.now, len(self._waiting))
                self._admit(txn, event)
            return
        # FCFS among eligible tenants: scan the queue in order, admitting
        # each waiter whose tenant is below its admission quota while the
        # global threshold has room; over-quota waiters keep their place
        index = 0
        while index < len(self._waiting) and self.current_load < self._limit:
            txn, event = self._waiting[index]
            if self._below_admission_quota(txn.tenant):
                del self._waiting[index]
                self._waiting_by_tenant[txn.tenant] -= 1
                self.queue_stats.update(self.sim.now, len(self._waiting))
                self._admit(txn, event)
            else:
                index += 1

    # ------------------------------------------------------------------
    def mean_load(self, until: Optional[float] = None) -> float:
        """Time-averaged in-system load since the last statistics reset."""
        return self.load_stats.mean(until if until is not None else self.sim.now)

    def reset_statistics(self) -> None:
        """Restart the time-weighted averages (end of warm-up or interval)."""
        self.load_stats.reset(self.sim.now)
        self.queue_stats.reset(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AdmissionGate limit={self._limit:.1f} load={self.current_load} "
            f"queued={self.queue_length}>"
        )
