"""Figure 13: trajectory of the Incremental Steps controller under a jump.

The workload changes abruptly mid-run (the number of accesses per
transaction jumps from 4 to 16), which moves the position of the throughput
optimum.  Figure 13 shows the IS threshold trajectory: it reacts quickly but
adjusts to the new optimum far less accurately than PA (Figure 14).

The benchmark runs the runner's ``fig13_is_jump`` scenario (the full
discrete-event system with the contention-bound preset), records the
(time, n*) trajectory together with the analytic reference optimum, prints
the Figure 13 series and reports the tracking metrics that the Figure 14
benchmark compares against.
"""

from conftest import run_once

from repro.experiments.report import format_series_table
from repro.experiments.tracking import compute_tracking_metrics
from repro.runner import run_sweep, tracking_results


def test_fig13_incremental_steps_jump_trajectory(benchmark, scale, workers, replicates):
    def experiment():
        return run_sweep("fig13_is_jump", scale=scale, workers=workers,
                         replicates=replicates)

    sweep_result = run_once(benchmark, experiment)
    result = tracking_results(sweep_result)["IS"]
    params = sweep_result.spec.cells[0].params
    metrics = compute_tracking_metrics(
        result, disturbance_time=scale.tracking_horizon / 2.0,
        evaluate_after=scale.tracking_horizon * 0.15)

    print()
    print("Figure 13 — IS threshold trajectory under an abrupt workload change")
    print(format_series_table(result, every=max(1, len(result.trace) // 25)))
    print(f"mean |n* - n_opt| = {metrics.mean_absolute_error:.1f}, "
          f"settling time = {metrics.settling_time:.1f}s, "
          f"throughput ratio = {metrics.throughput_ratio:.2f}")

    benchmark.extra_info["threshold_series"] = [
        (round(t, 2), round(limit, 1)) for t, limit in result.threshold_series()]
    benchmark.extra_info["reference_series"] = [
        (round(t, 2), round(opt, 1)) for t, opt in result.reference_series()]
    benchmark.extra_info["mean_abs_error"] = round(metrics.mean_absolute_error, 2)
    benchmark.extra_info["settling_time"] = metrics.settling_time
    benchmark.extra_info["total_commits"] = result.total_commits

    # the trajectory exists, stays within bounds, and work keeps flowing
    assert len(result.trace) >= 10
    assert all(4 <= limit <= params.n_terminals for limit in result.trace.limits)
    assert result.total_commits > 0
    # the reference optimum genuinely moved at the jump
    assert max(result.reference_optima) > 1.3 * min(result.reference_optima)
