"""``repro-svc``: the sweep service's console entry point.

``repro-svc serve`` starts a persistent service process: a worker port
(``repro-dist-worker --connect`` targets), a TCP control port for the
client subcommands, an optional HTTP/JSON port, and a content-addressed
result cache directory shared across restarts.  The remaining subcommands
are one-shot clients of a running service::

    repro-svc serve --cache /tmp/sweep-cache --local-workers 2
    repro-svc submit fig12_stationary --address HOST:PORT --wait
    repro-svc status --address HOST:PORT
    repro-svc results job-1 --address HOST:PORT
    repro-svc cache --address HOST:PORT
    repro-svc shutdown --address HOST:PORT

``serve`` prints its three bound addresses on stdout (one
``<name> address: host:port`` line each) before serving, so scripts — and
the CI smoke job — can scrape ephemeral ports.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import threading
import time

from repro.obs import telemetry
from repro.svc.cache import ResultCache
from repro.svc.client import ServiceClient
from repro.svc.service import SweepService

logger = logging.getLogger("repro.svc.cli")


class _CrashAfterFills(ResultCache):
    """Test-only cache that hard-kills the process after N fills.

    The deterministic fault injection behind the crash-recovery test
    (mirroring ``repro-dist-worker --fail-after-cells``): with one worker,
    cells complete in submission order, so exactly the first N results
    land in the cache before the service dies mid-job without any
    shutdown courtesies.  Exit code 17 distinguishes the injected crash
    from a real failure.
    """

    def __init__(self, directory, limit: int):
        super().__init__(directory)
        self._fills_left = int(limit)

    def put(self, spec, result):
        key = super().put(spec, result)
        if key is not None:
            self._fills_left -= 1
            if self._fills_left <= 0:
                logging.shutdown()
                os._exit(17)
        return key


def _serve(args) -> int:
    """Run a service until a shutdown request (or Ctrl-C) arrives."""
    cache = None
    if args.cache is not None:
        if args.exit_after_fills is not None:
            cache = _CrashAfterFills(args.cache, args.exit_after_fills)
        else:
            cache = ResultCache(args.cache)
    elif args.exit_after_fills is not None:
        raise SystemExit("--exit-after-fills requires --cache")
    service = SweepService(
        worker_bind=args.bind,
        control_bind=args.control,
        cache=cache,
        heartbeat_timeout=args.heartbeat_timeout,
        worker_timeout=args.worker_wait,
    )
    http_server = None
    local_processes = []
    try:
        print(f"worker address: {service.worker_address}", flush=True)
        print(f"control address: {service.control_address}", flush=True)
        if args.http is not None:
            from repro.svc.http import make_http_server

            http_server = make_http_server(service, args.http)
            host, port = http_server.server_address[:2]
            print(f"http address: {host}:{port}", flush=True)
            threading.Thread(target=http_server.serve_forever,
                             name="svc-http", daemon=True).start()
        if args.local_workers:
            from repro.dist.cluster import spawn_local_workers

            local_processes = spawn_local_workers(service.worker_address,
                                                  args.local_workers)
        if args.min_workers:
            service.executor.wait_for_workers(args.min_workers,
                                              timeout=args.worker_wait)
        logger.info("service ready: %d worker(s), cache=%s",
                    service.executor.workers,
                    cache.directory if cache is not None else "off")
        while not service.closed:
            time.sleep(0.2)
        logger.info("service shut down")
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        logger.info("interrupted")
    finally:
        if http_server is not None:
            http_server.shutdown()
        service.close()
        for process in local_processes:
            try:
                process.wait(timeout=15)
            except Exception:
                process.kill()
                process.wait()
    return 0


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=1, sort_keys=True))


def _submit(args) -> int:
    client = ServiceClient(args.address)
    job_id = client.submit_scenario(args.scenario, scale=args.scale,
                                    replicates=args.replicates)
    print(job_id)
    if args.wait:
        status = client.wait(job_id, timeout=args.timeout)
        _print_json(status)
        return 0 if status["state"] == "done" else 1
    return 0


def _status(args) -> int:
    _print_json(ServiceClient(args.address).status(args.job_id))
    return 0


def _results(args) -> int:
    _print_json(ServiceClient(args.address).results(args.job_id))
    return 0


def _cache(args) -> int:
    _print_json(ServiceClient(args.address).cache_stats())
    return 0


def _shutdown(args) -> int:
    print(ServiceClient(args.address).shutdown())
    return 0


def _add_address(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--address", required=True, metavar="HOST:PORT",
                        help="the service's control address")


def main(argv=None) -> int:
    """Entry point of the ``repro-svc`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-svc",
        description="Persistent sweep service with a content-addressed "
                    "result cache.",
    )
    parser.add_argument("--quiet", action="store_true",
                        help="log warnings and errors only")
    parser.add_argument("--verbose", action="store_true",
                        help="log debug diagnostics")
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="run a service process until shut down")
    serve.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="worker port (default: 127.0.0.1:0, ephemeral)")
    serve.add_argument("--control", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="TCP control port (default: 127.0.0.1:0)")
    serve.add_argument("--http", default=None, metavar="HOST:PORT",
                       help="also serve the HTTP/JSON control plane here")
    serve.add_argument("--cache", default=None, metavar="DIR",
                       help="content-addressed result cache directory "
                            "(persistent across restarts; default: uncached)")
    serve.add_argument("--local-workers", type=int, default=0, metavar="N",
                       help="also spawn N worker subprocesses on this host")
    serve.add_argument("--min-workers", type=int, default=0, metavar="N",
                       help="wait for N workers before reporting ready")
    serve.add_argument("--worker-wait", type=float, default=600.0,
                       metavar="SECONDS",
                       help="zero-worker stall budget per sweep (default: 600)")
    serve.add_argument("--heartbeat-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="declare a silent worker dead after this long "
                            "(default: 30)")
    serve.add_argument("--exit-after-fills", type=int, default=None,
                       metavar="N", help=argparse.SUPPRESS)  # test-only crash
    serve.set_defaults(run=_serve)

    submit = commands.add_parser(
        "submit", help="submit a registry scenario as a job")
    _add_address(submit)
    submit.add_argument("scenario", help="registry scenario name")
    submit.add_argument("--scale", default="smoke",
                        choices=("smoke", "benchmark", "paper"),
                        help="experiment scale preset (default: smoke)")
    submit.add_argument("--replicates", type=int, default=1,
                        help="independent replicates per cell (default: 1)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes; exit 1 on failure")
    submit.add_argument("--timeout", type=float, default=600.0,
                        metavar="SECONDS",
                        help="--wait budget (default: 600)")
    submit.set_defaults(run=_submit)

    status = commands.add_parser("status", help="job status (one or all)")
    _add_address(status)
    status.add_argument("job_id", nargs="?", default=None,
                        help="job id (omit for every job)")
    status.set_defaults(run=_status)

    results = commands.add_parser(
        "results", help="results document of a finished job")
    _add_address(results)
    results.add_argument("job_id", help="job id")
    results.set_defaults(run=_results)

    cache = commands.add_parser("cache", help="cache hit/miss counters")
    _add_address(cache)
    cache.set_defaults(run=_cache)

    shutdown = commands.add_parser("shutdown", help="stop the service")
    _add_address(shutdown)
    shutdown.set_defaults(run=_shutdown)

    args = parser.parse_args(argv)
    telemetry.configure_cli_logging(verbose=args.verbose, quiet=args.quiet)
    return args.run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CI CLI smoke
    raise SystemExit(main(sys.argv[1:]))
