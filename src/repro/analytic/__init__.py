"""Analytical models and synthetic test functions.

The paper builds on a line of analytical work (Tay et al. 1985 for locking,
Dan et al. 1988 and Thomasian & Ryu 1990 for optimistic schemes) that models
thrashing.  This package provides:

* :mod:`repro.analytic.tay` -- the mean-value blocking model behind Tay's
  ``k^2 n / D < 1.5`` rule of thumb, plus the absolute-throughput adapter
  used as the model reference of locking-family series;
* :mod:`repro.analytic.occ` -- a fixed-point model of the optimistic
  (certification) system used in the simulation, giving a fast analytical
  approximation of the load/throughput curve and its optimum;
* :mod:`repro.analytic.references` -- the scheme-aware choice between the
  two: locking-family schemes are referenced against Tay's model,
  optimistic ones against the OCC fixed point, keyed off the CC registry's
  family metadata;
* :mod:`repro.analytic.synthetic` -- the "dynamic optimum search"
  abstraction of Section 3 / Figure 2 as an explicit, time-varying unimodal
  performance function with observation noise, used to unit-test and stress
  the controllers without running the discrete-event model;
* :mod:`repro.analytic.thrashing` -- helpers for classifying a measured
  load/throughput curve into the underload / saturation / overload phases
  of Figure 1 and for locating its optimum.
"""

from repro.analytic.occ import OccModel
from repro.analytic.references import (
    OCC_REFERENCE,
    TAY_REFERENCE,
    reference_family,
    reference_model_for,
    reference_model_name,
    reference_optimum,
)
from repro.analytic.synthetic import DynamicOptimumScenario, SyntheticOverloadFunction, SyntheticSystem
from repro.analytic.tay import TayModel, TayThroughputModel
from repro.analytic.thrashing import CurvePhases, classify_phases, find_optimum, thrashing_onset

__all__ = [
    "OccModel",
    "TayModel",
    "TayThroughputModel",
    "TAY_REFERENCE",
    "OCC_REFERENCE",
    "reference_family",
    "reference_model_for",
    "reference_model_name",
    "reference_optimum",
    "SyntheticOverloadFunction",
    "SyntheticSystem",
    "DynamicOptimumScenario",
    "CurvePhases",
    "classify_phases",
    "find_optimum",
    "thrashing_onset",
]
