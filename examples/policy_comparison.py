#!/usr/bin/env python3
"""Compare every load-control policy on a workload that shifts twice.

Section 1 of the paper lists the alternatives to feedback control: doing
nothing, a fixed administrator-tuned bound, and theoretically derived rules
of thumb.  This example runs all of them — plus the paper's IS and PA
controllers — through a workload whose transaction size changes twice, and
also demonstrates two optional features of the framework:

* the outer control loop (automatic sizing of the measurement interval), and
* the displacement policy (aborting transactions when the threshold drops
  far below the current load).

Run with:  python examples/policy_comparison.py [--quick]
"""

import argparse

from repro.core import (
    DisplacementPolicy,
    FixedLimit,
    IncrementalStepsController,
    IyerRule,
    MeasurementIntervalTuner,
    NoControl,
    ParabolaController,
    TayRule,
    VictimCriterion,
)
from repro.experiments import ExperimentScale, default_system_params
from repro.experiments.report import format_table
from repro.sim.random_streams import RandomStreams
from repro.tp import TransactionSystem, Workload
from repro.tp.workload import StepSchedule


def build_system(params, schedule, displacement=None):
    streams = RandomStreams(params.seed)
    workload = Workload.with_schedules(params.workload, streams, accesses=schedule)
    return TransactionSystem(params, streams=streams, workload=workload,
                             displacement=displacement)


def policies(params):
    upper = params.n_terminals
    return {
        "no control": lambda: NoControl(upper_bound=upper),
        "fixed limit (20)": lambda: FixedLimit(20, upper_bound=upper),
        "Tay rule": lambda: TayRule(db_size=params.workload.db_size,
                                    accesses_per_txn=params.workload.accesses_per_txn,
                                    upper_bound=upper),
        "Iyer rule": lambda: IyerRule(target_conflicts=0.75, step=3.0,
                                      initial_limit=20, upper_bound=upper),
        "Incremental Steps": lambda: IncrementalStepsController(
            initial_limit=20, beta=1.0, gamma=5, delta=10, min_step=2.0,
            lower_bound=2, upper_bound=upper),
        "Parabola Approximation": lambda: ParabolaController(
            initial_limit=20, forgetting=0.9, probe_amplitude=3.0, max_move=30.0,
            lower_bound=2, upper_bound=upper),
        "PA + displacement + outer loop": "special",
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a shorter simulation")
    arguments = parser.parse_args()
    scale = ExperimentScale.smoke() if arguments.quick else ExperimentScale.benchmark()
    horizon = scale.tracking_horizon

    params = default_system_params(seed=19).with_changes(n_terminals=250)
    # transaction size: 6 accesses, then 12, then back to 4
    schedule = StepSchedule(initial=6, steps=[(horizon / 3, 12), (2 * horizon / 3, 4)])

    print(f"Workload: k = 6 -> 12 (at t={horizon / 3:.0f}s) -> 4 (at t={2 * horizon / 3:.0f}s), "
          f"{params.n_terminals} terminals, horizon {horizon:.0f}s\n")

    rows = []
    for name, factory in policies(params).items():
        if factory == "special":
            displacement = DisplacementPolicy(criterion=VictimCriterion.YOUNGEST, hysteresis=5)
            system = build_system(params, schedule, displacement=displacement)
            controller = ParabolaController(initial_limit=20, forgetting=0.9,
                                            probe_amplitude=3.0, max_move=30.0,
                                            lower_bound=2, upper_bound=params.n_terminals)
            tuner = MeasurementIntervalTuner(target_departures=150, min_interval=0.5,
                                             max_interval=10.0)
            system.attach_controller(controller, interval=scale.measurement_interval,
                                     interval_tuner=tuner)
        else:
            system = build_system(params, schedule)
            system.attach_controller(factory(), interval=scale.measurement_interval)
        system.run(until=horizon)
        summary = system.summary()
        displaced = system.metrics.aborts_by_reason
        rows.append([
            name,
            system.metrics.commits,
            summary["throughput"],
            summary["mean_response_time"],
            summary["restart_ratio"],
        ])
        print(f"  finished: {name:<32} commits={system.metrics.commits}")

    print()
    print(format_table(
        ["policy", "commits", "throughput [txn/s]", "mean response [s]", "restarts/commit"],
        rows))
    print("\nThe static policies depend on how well their single setting matches the")
    print("current workload; the feedback controllers adapt to every shift without")
    print("knowing the workload parameters at all (Section 1, option 4).")


if __name__ == "__main__":
    main()
