"""Experiment configuration: system presets and scale knobs.

The paper's figures were produced with long simulation runs at offered loads
of up to 800 terminals.  Re-running at that size is possible but slow in a
pure-Python discrete-event simulator, so every experiment accepts an
:class:`ExperimentScale` that shrinks the horizon and the sweep while
preserving the qualitative shape.  Three presets are provided:

* ``ExperimentScale.smoke()`` -- seconds per experiment; used by unit and
  integration tests.
* ``ExperimentScale.benchmark()`` -- the default for the benchmark harness;
  tens of seconds for the full suite.
* ``ExperimentScale.paper()`` -- the full-size runs (offered loads to 800,
  horizons of hundreds of simulated seconds) for reproducing the figures at
  the paper's scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.tp.params import SystemParams, WorkloadParams


def default_system_params(seed: int = 1) -> SystemParams:
    """The standard configuration used across experiments.

    The values follow the structure of the configurations Yu et al. (1987)
    derive from customer traces (moderate transaction sizes, a few
    processors, database of a few thousand granules) and are tuned so that
    the CPU saturates around a multiprogramming level of a few tens and
    data-contention thrashing appears well inside the studied load range.
    """
    return SystemParams(
        n_terminals=200,
        think_time=1.0,
        n_cpus=4,
        cpu_init=0.005,
        cpu_per_access=0.005,
        cpu_commit=0.005,
        disk_per_access=0.02,
        disk_commit=0.02,
        restart_delay=0.01,
        stochastic_cpu=True,
        seed=seed,
        workload=WorkloadParams(
            db_size=4000,
            accesses_per_txn=8,
            query_fraction=0.25,
            write_fraction=0.5,
        ),
    )


def contention_bound_params(seed: int = 1) -> SystemParams:
    """A configuration whose throughput optimum *moves* with the workload.

    The stationary experiments (Figures 1 and 12) use
    :func:`default_system_params`, where CPU and disk demands both scale with
    the transaction size ``k``, so the optimal multiprogramming level barely
    moves when ``k`` changes.  The dynamic experiments (Figures 13 and 14)
    need the opposite: a jump of one workload parameter must shift the
    position of the optimum substantially, otherwise there is nothing for
    the controller to track.

    In this preset the CPU demand is dominated by a fixed per-transaction
    overhead while the residence time is dominated by per-access disk time.
    The processors therefore saturate at a multiprogramming level of roughly
    ``m * (1 + disk/cpu)``, which grows with ``k``; doubling or halving the
    number of accesses per transaction moves the optimum by a factor of
    about two, and beyond the optimum certification conflicts (database of
    2000 granules) make the throughput fall off -- the moving mountain ridge
    of Figure 2.
    """
    return SystemParams(
        n_terminals=400,
        think_time=0.5,
        n_cpus=16,
        cpu_init=0.040,
        cpu_per_access=0.001,
        cpu_commit=0.005,
        disk_per_access=0.025,
        disk_commit=0.010,
        restart_delay=0.01,
        stochastic_cpu=True,
        seed=seed,
        workload=WorkloadParams(
            db_size=2000,
            accesses_per_txn=8,
            query_fraction=0.25,
            write_fraction=0.5,
        ),
    )


@dataclass(frozen=True)
class ExperimentScale:
    """How big the runs are; all experiments accept one of these."""

    #: simulated seconds per stationary point (after warm-up)
    stationary_horizon: float
    #: simulated warm-up seconds discarded before measuring
    warmup: float
    #: offered loads (numbers of terminals) for the stationary sweeps
    offered_loads: Sequence[int]
    #: simulated seconds of a dynamic tracking run
    tracking_horizon: float
    #: measurement interval of the load controller during tracking runs
    measurement_interval: float
    #: steps of a synthetic-plant tracking run
    synthetic_steps: int

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Tiny runs for tests: shape only, large statistical error."""
        return cls(
            stationary_horizon=8.0,
            warmup=2.0,
            offered_loads=(25, 100, 300),
            tracking_horizon=60.0,
            measurement_interval=2.0,
            synthetic_steps=120,
        )

    @classmethod
    def benchmark(cls) -> "ExperimentScale":
        """Default benchmark size: minutes for the whole suite."""
        return cls(
            stationary_horizon=25.0,
            warmup=5.0,
            offered_loads=(25, 50, 100, 200, 400, 600, 800),
            tracking_horizon=150.0,
            measurement_interval=2.5,
            synthetic_steps=400,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Full-size runs approximating the paper's figures."""
        return cls(
            stationary_horizon=120.0,
            warmup=20.0,
            offered_loads=(50, 100, 200, 300, 400, 500, 600, 700, 800),
            tracking_horizon=1000.0,
            measurement_interval=5.0,
            synthetic_steps=1000,
        )
