"""Failure predicates: when has a controller *lost* against an adversary?

The fuzzer needs an executable definition of "the controller failed to
rescue the system".  Three predicates, each tied to a first-class claim of
the paper:

* **rescue failure** — the run's measured throughput stays below
  ``rescue_fraction`` of the scheme-aware analytic optimum
  (:func:`repro.analytic.references.reference_optimum`).  For tracking
  cells the runner already reports exactly this quantity post-transient as
  the ``throughput_ratio`` metric; stationary cells are scored against the
  analytic peak of their own configuration (mixed-class cells against the
  expectation of their mix).
* **displacement livelock** — the displacement counter dwarfs the commit
  counter (``displaced > livelock_ratio * commits``): the controller aborts
  the same work over and over instead of finishing it (Section 4.3's
  instability warning, made operational).
* **admission collapse** — the commit rate falls below
  ``min_commit_rate`` transactions per simulated second: the gate
  effectively shut the system down.

:func:`score_run` maps one executed cell to a :class:`Verdict`; any
triggered predicate makes the run a counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analytic.references import reference_model_name, reference_optimum
from repro.runner.specs import KIND_TRACKING, RunSpec
from repro.tp.workload import mixed_class_params


@dataclass(frozen=True)
class FailureThresholds:
    """Tunable severity of the three failure predicates."""

    #: a run "rescued" less than this fraction of the analytic peak failed
    rescue_fraction: float = 0.35
    #: displaced-to-committed ratio above which displacement is a livelock
    livelock_ratio: float = 3.0
    #: commits per simulated second below which admission has collapsed
    min_commit_rate: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.rescue_fraction < 1.0:
            raise ValueError(
                f"rescue_fraction must be in (0, 1), got {self.rescue_fraction}"
            )
        if self.livelock_ratio <= 0.0:
            raise ValueError(
                f"livelock_ratio must be positive, got {self.livelock_ratio}"
            )
        if self.min_commit_rate < 0.0:
            raise ValueError(
                f"min_commit_rate must be non-negative, got {self.min_commit_rate}"
            )


@dataclass(frozen=True)
class Verdict:
    """The oracle's judgement of one executed candidate."""

    cell_id: str
    #: True when any failure predicate triggered (= counterexample found)
    failed: bool
    #: which predicates triggered ("rescue", "livelock", "collapse")
    reasons: Tuple[str, ...]
    #: measured throughput of the run (commits per simulated second)
    throughput: float
    #: measured / analytic-peak throughput (the rescue score)
    throughput_fraction: float
    #: name of the analytic reference the score was computed against
    reference: str

    def to_jsonable(self) -> dict:
        """Encode as plain JSON data (archived with each counterexample)."""
        return {
            "cell_id": self.cell_id,
            "failed": self.failed,
            "reasons": list(self.reasons),
            "throughput": self.throughput,
            "throughput_fraction": self.throughput_fraction,
            "reference": self.reference,
        }


def rescue_score(spec: RunSpec, metrics: Dict[str, float]) -> Tuple[float, str]:
    """``(measured/peak fraction, reference name)`` for one executed cell.

    Tracking cells reuse the runner's post-transient ``throughput_ratio``
    metric (measured against the analytic peak of the parameters in effect
    at each sample, so the disturbance is already accounted for).
    Stationary cells are scored against :func:`reference_optimum` — with the
    workload overridden by the expectation of the mix for mixed-class cells.
    """
    if spec.kind == KIND_TRACKING:
        return (float(metrics.get("throughput_ratio", 0.0)),
                reference_model_name(spec.cc))
    workload = spec.params.workload
    if spec.workload_classes is not None:
        workload = mixed_class_params(workload, spec.workload_classes)
    name, _optimal, peak = reference_optimum(spec.params, spec.cc,
                                             workload=workload)
    throughput = float(metrics.get("throughput", 0.0))
    if peak <= 0.0:
        return (1.0 if throughput > 0.0 else 0.0), name
    return throughput / peak, name


def score_run(spec: RunSpec, metrics: Dict[str, float],
              thresholds: Optional[FailureThresholds] = None) -> Verdict:
    """Apply the failure predicates to one executed cell's metrics."""
    thresholds = thresholds or FailureThresholds()
    fraction, reference = rescue_score(spec, metrics)
    throughput = float(metrics.get("throughput", 0.0))
    commits = float(metrics.get("commits", 0.0))
    displaced = metrics.get("displaced")
    reasons = []
    if fraction < thresholds.rescue_fraction:
        reasons.append("rescue")
    if displaced is not None and displaced > thresholds.livelock_ratio * max(commits, 1.0):
        reasons.append("livelock")
    if throughput < thresholds.min_commit_rate:
        reasons.append("collapse")
    return Verdict(
        cell_id=spec.cell_id,
        failed=bool(reasons),
        reasons=tuple(reasons),
        throughput=throughput,
        throughput_fraction=fraction,
        reference=reference,
    )
