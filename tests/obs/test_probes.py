"""The in-sim probe layer: validation, schema, and trajectory preservation."""

import pytest

from repro.cc.registry import CCSpec
from repro.experiments.config import default_system_params
from repro.experiments.stationary import run_stationary_point
from repro.obs.probes import (
    ABORT_RATES,
    ADMISSION_QUEUE,
    DISPLACEMENT,
    LOCK_QUEUE,
    LOCK_WAIT,
    MPL,
    PROBE_NAMES,
    ProbeSet,
    validate_probes,
)


def contended_2pl_params(seed=47):
    base = default_system_params(seed=seed)
    return base.with_changes(
        n_terminals=100,
        workload=base.workload.with_changes(db_size=1500, write_fraction=0.6),
    )


def run_point(probes, params=None):
    return run_stationary_point(
        params or contended_2pl_params(),
        horizon=8.0,
        warmup=2.0,
        cc=CCSpec.make("two_phase_locking", victim_policy="youngest"),
        probes=probes,
    )


class TestValidateProbes:
    def test_accepts_all_builtins_in_given_order(self):
        names = tuple(reversed(PROBE_NAMES))
        assert validate_probes(names) == names

    def test_rejects_empty_selection(self):
        with pytest.raises(ValueError, match="at least one probe"):
            validate_probes(())

    def test_rejects_unknown_probe_naming_the_alternatives(self):
        with pytest.raises(ValueError, match="unknown probe 'latency'"):
            validate_probes(("latency",))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate probe"):
            validate_probes((MPL, MPL))


class TestProbeSetWiring:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            ProbeSet(PROBE_NAMES, interval=0.0)

    def test_unbound_probe_set_refuses_readout(self):
        probe_set = ProbeSet(PROBE_NAMES)
        with pytest.raises(RuntimeError, match="not bound"):
            probe_set.metrics(1.0)

    def test_binds_to_one_system_only(self):
        from repro.tp.system import TransactionSystem

        params = contended_2pl_params()
        probe_set = ProbeSet(PROBE_NAMES)
        TransactionSystem(params, probes=probe_set)
        with pytest.raises(RuntimeError, match="only one system"):
            TransactionSystem(params, probes=probe_set)

    def test_wants_sampling_tracks_gauge_probes(self):
        assert ProbeSet((MPL,)).wants_sampling
        assert ProbeSet((LOCK_QUEUE, ADMISSION_QUEUE)).wants_sampling
        assert not ProbeSet((LOCK_WAIT, ABORT_RATES, DISPLACEMENT)).wants_sampling


class TestMetricsSchema:
    def test_key_set_is_a_pure_function_of_the_enabled_probes(self):
        point = run_point(probes=(LOCK_WAIT, MPL))
        keys = set(point.probe_metrics)
        assert keys == {
            "probe_lock_wait_count", "probe_lock_wait_mean",
            "probe_lock_wait_max", "probe_lock_wait_total",
            "probe_lock_wait_residence_count", "probe_lock_wait_residence_mean",
            "probe_lock_wait_share", "probe_mpl_mean", "probe_mpl_max",
        }

    def test_all_builtin_probes_report_floats(self):
        point = run_point(probes=PROBE_NAMES)
        assert point.probe_metrics
        for name, value in point.probe_metrics.items():
            assert name.startswith("probe_")
            assert isinstance(value, float), name

    def test_no_probes_means_no_probe_metrics(self):
        assert run_point(probes=None).probe_metrics == {}

    def test_contended_2pl_actually_measures_waits(self):
        metrics = run_point(probes=PROBE_NAMES).probe_metrics
        assert metrics["probe_lock_wait_count"] > 0
        assert 0.0 < metrics["probe_lock_wait_share"] <= 1.0
        assert metrics["probe_mpl_mean"] > 0
        assert metrics["probe_lock_wait_residence_count"] > 0


class TestTrajectoryPreservation:
    def test_probed_run_commits_exactly_what_the_unprobed_run_does(self):
        unprobed = run_point(probes=None)
        probed = run_point(probes=PROBE_NAMES)
        assert probed.commits == unprobed.commits
        assert probed.aborts_by_reason == unprobed.aborts_by_reason
        assert probed.throughput == unprobed.throughput
        assert probed.mean_response_time == unprobed.mean_response_time
        assert probed.mean_concurrency == unprobed.mean_concurrency


class TestWaitDepthHook:
    def test_non_blocking_schemes_report_zero_depth(self):
        from repro.sim.engine import Simulator
        from repro.cc.timestamp_cert import TimestampCertification

        scheme = TimestampCertification(Simulator())
        assert scheme.wait_depth() == 0

    def test_locking_scheme_reports_its_blocked_count(self):
        from repro.sim.engine import Simulator
        from repro.cc.two_phase_locking import LockingScheme

        scheme = LockingScheme(Simulator())
        assert scheme.wait_depth() == scheme.blocked_count == 0
