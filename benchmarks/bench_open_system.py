"""Open-system traffic: the flash crowd and the diurnal arrival sweep.

The closed benchmarks bound their own offered load by construction — ``N``
terminals can never have more than ``N`` transactions in flight.  These two
drivers run the scenarios where the load arrives from *outside*:

* ``flash_crowd`` — partly-open sessions whose arrival rate jumps 3.5×
  mid-window against two tenants; the bursting tenant carries admission and
  queue quotas, the steady tenant does not.  The qualitative statement
  checked is the whole point of per-tenant quotas, and it holds at every
  scale: every shed transaction belongs to the bursting tenant (the steady
  tenant is never busy-signaled), shedding grows along the offered-load
  axis, and both tenants keep committing throughout.  The sharper
  smoke-scale claims — the steady tenant's p95 staying under its SLO and
  below the bursting tenant's — are pinned by
  ``tests/experiments/test_open_system.py``; deep saturation inverts the
  tail ordering honestly (the bursting tenant's bounded queue sheds its
  excess instantly while the quota-free steady queue grows), so the
  benchmark reports both tails instead of asserting their order.
* ``open_diurnal`` — a sinusoid Poisson rate over the IS-controlled 2PL
  system.  An open overload cannot drain, so the ``arrival_backlog`` probe
  must grow monotonically along the offered-load axis — the open-system
  analogue of the paper's thrashing signature.
"""

from conftest import run_once

from repro.experiments.report import format_sweep_table
from repro.runner import run_sweep, stationary_sweeps


def test_flash_crowd_sheds_the_bursting_tenant_only(benchmark, scale,
                                                    workers, replicates):
    def experiment():
        result = run_sweep("flash_crowd", scale=scale, workers=workers,
                           replicates=replicates)
        return result, stationary_sweeps(result)

    result, sweeps = run_once(benchmark, experiment)

    print()
    print("partly-open flash crowd — two tenants, quotas on the bursting one")
    print(format_sweep_table(list(sweeps.values())))

    shed_total = 0.0
    shed_by_label = {}
    for cell in result.results:
        # every shed belongs to the quota'd tenant: the busy signal lands on
        # the crowd, never on the steady tenant it would displace
        assert cell.metrics["tenant_shed_steady"] == 0.0, (
            f"{cell.cell_id}: the steady tenant was shed")
        assert cell.metrics["shed"] == cell.metrics["tenant_shed_burst"], (
            f"{cell.cell_id}: shed transactions outside the tenant accounting")
        # ... and shedding never starves anyone outright
        assert cell.metrics["tenant_commits_steady"] > 0, cell.cell_id
        assert cell.metrics["tenant_commits_burst"] > 0, cell.cell_id
        shed_total += cell.metrics["shed"]
        shed_by_label.setdefault(cell.label, []).append(cell.metrics["shed"])
    assert shed_total > 0, "the flash crowd never overloaded the gate"
    for label, sheds in shed_by_label.items():
        assert sheds == sorted(sheds), (
            f"{label}: shedding should grow along the offered-load axis "
            f"({sheds})")
    benchmark.extra_info["shed_total"] = shed_total
    benchmark.extra_info["shed_burst"] = {
        label: sheds for label, sheds in shed_by_label.items()}
    benchmark.extra_info["steady_p95"] = [
        round(cell.metrics["tenant_p95_response_time_steady"], 3)
        for cell in result.results]
    benchmark.extra_info["burst_p95"] = [
        round(cell.metrics["tenant_p95_response_time_burst"], 3)
        for cell in result.results]


def test_open_diurnal_backlog_grows_with_offered_load(benchmark, scale,
                                                      workers, replicates):
    def experiment():
        result = run_sweep("open_diurnal", scale=scale, workers=workers,
                           replicates=replicates)
        return result, stationary_sweeps(result)

    result, sweeps = run_once(benchmark, experiment)

    print()
    print("open diurnal sweep — sinusoid Poisson arrivals, backlog probe")
    print(format_sweep_table(list(sweeps.values())))

    by_label = {}
    for cell in result.results:
        assert 0.0 < cell.metrics["p95_response_time"] <= cell.metrics[
            "p99_response_time"], cell.cell_id
        by_label.setdefault(cell.label, []).append(
            cell.metrics["probe_arrival_backlog_mean"])
    for label, backlogs in by_label.items():
        assert backlogs == sorted(backlogs), (
            f"{label}: backlog should grow along the offered-load axis "
            f"({backlogs})")
        assert backlogs[-1] > 10 * backlogs[0], (
            f"{label}: the top of the grid should be in sustained overload "
            f"({backlogs})")
        benchmark.extra_info[f"backlog_{label}"] = [
            round(value, 2) for value in backlogs]
