"""Tests for the controller base class and the static/rule-based baselines."""

import math

import pytest

from repro.core.controller import LoadController
from repro.core.rules import IyerRule, TayRule
from repro.core.static import FixedLimit, NoControl
from repro.core.types import IntervalMeasurement


def measurement(throughput=50.0, concurrency=20.0, limit=25.0, commits=100,
                conflicts=0, aborts=0, time=1.0, mean_accesses=None):
    return IntervalMeasurement(
        time=time,
        interval_length=1.0,
        throughput=throughput,
        mean_concurrency=concurrency,
        concurrency_at_sample=concurrency,
        current_limit=limit,
        commits=commits,
        aborts=aborts,
        conflicts=conflicts,
        mean_accesses_per_txn=mean_accesses,
    )


class _EchoController(LoadController):
    """Minimal concrete controller used to test the base class."""

    name = "echo"

    def __init__(self, propose, **kwargs):
        super().__init__(**kwargs)
        self._propose_value = propose

    def _propose(self, _measurement):
        return self._propose_value


class TestLoadControllerBase:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            _EchoController(10, initial_limit=5, lower_bound=0.5)
        with pytest.raises(ValueError):
            _EchoController(10, initial_limit=5, lower_bound=10, upper_bound=5)

    def test_initial_limit_clamped(self):
        controller = _EchoController(10, initial_limit=500, lower_bound=1, upper_bound=100)
        assert controller.initial_limit == 100
        assert controller.current_limit == 100

    def test_update_clamps_to_bounds(self):
        controller = _EchoController(1e9, initial_limit=10, lower_bound=2, upper_bound=50)
        assert controller.update(measurement()) == 50
        controller._propose_value = -5
        assert controller.update(measurement()) == 2

    def test_nan_proposal_falls_to_lower_bound(self):
        controller = _EchoController(float("nan"), initial_limit=10, lower_bound=3, upper_bound=50)
        assert controller.update(measurement()) == 3

    def test_update_counter_and_reset(self):
        controller = _EchoController(20, initial_limit=10, upper_bound=50)
        controller.update(measurement())
        controller.update(measurement())
        assert controller.updates == 2
        controller.reset()
        assert controller.updates == 0
        assert controller.current_limit == 10


class TestNoControl:
    def test_limit_is_effectively_infinite(self):
        controller = NoControl()
        assert math.isinf(controller.current_limit)
        assert math.isinf(controller.update(measurement()))

    def test_finite_upper_bound_respected(self):
        controller = NoControl(upper_bound=500)
        assert controller.update(measurement()) == 500

    def test_name(self):
        assert NoControl().name == "no-control"


class TestFixedLimit:
    def test_limit_never_changes(self):
        controller = FixedLimit(42)
        for throughput in (10.0, 100.0, 0.0):
            assert controller.update(measurement(throughput=throughput)) == 42

    def test_limit_clamped_into_bounds(self):
        controller = FixedLimit(500, upper_bound=100)
        assert controller.update(measurement()) == 100


class TestTayRule:
    def test_threshold_formula(self):
        controller = TayRule(db_size=9000, accesses_per_txn=10, margin=1.5,
                             track_measured_k=False)
        # n* = 1.5 * D / k^2 = 1.5 * 9000 / 100 = 135
        assert controller.update(measurement()) == pytest.approx(135.0)

    def test_tracks_measured_transaction_size(self):
        controller = TayRule(db_size=8000, accesses_per_txn=10, track_measured_k=True)
        small_k = controller.update(measurement(mean_accesses=5.0))
        large_k = controller.update(measurement(mean_accesses=20.0))
        assert small_k == pytest.approx(1.5 * 8000 / 25)
        assert large_k == pytest.approx(1.5 * 8000 / 400)
        assert small_k > large_k

    def test_static_when_not_tracking(self):
        controller = TayRule(db_size=8000, accesses_per_txn=10, track_measured_k=False)
        assert controller.update(measurement(mean_accesses=20.0)) == pytest.approx(120.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            TayRule(db_size=0, accesses_per_txn=5)
        with pytest.raises(ValueError):
            TayRule(db_size=100, accesses_per_txn=0)
        with pytest.raises(ValueError):
            TayRule(db_size=100, accesses_per_txn=5, margin=0.0)

    def test_lower_bound_enforced(self):
        controller = TayRule(db_size=100, accesses_per_txn=50, lower_bound=1.0)
        # the formula would give 1.5 * 100 / 2500 = 0.06; clamped to 1
        assert controller.update(measurement()) == 1.0


class TestIyerRule:
    def test_raises_limit_when_conflicts_low(self):
        controller = IyerRule(target_conflicts=0.75, step=2.0, initial_limit=10)
        new_limit = controller.update(measurement(commits=100, conflicts=10))
        assert new_limit == pytest.approx(12.0)

    def test_lowers_limit_when_conflicts_high(self):
        controller = IyerRule(target_conflicts=0.75, step=2.0, initial_limit=10)
        new_limit = controller.update(measurement(commits=100, conflicts=200))
        assert new_limit < 10.0

    def test_holds_inside_deadband(self):
        controller = IyerRule(target_conflicts=0.75, step=2.0, initial_limit=10, deadband=0.2)
        new_limit = controller.update(measurement(commits=100, conflicts=75))
        assert new_limit == pytest.approx(10.0)

    def test_backoff_proportional_to_excess(self):
        gentle = IyerRule(target_conflicts=0.75, step=2.0, initial_limit=50)
        harsh = IyerRule(target_conflicts=0.75, step=2.0, initial_limit=50)
        gentle_limit = gentle.update(measurement(commits=100, conflicts=80))
        harsh_limit = harsh.update(measurement(commits=100, conflicts=300))
        assert harsh_limit < gentle_limit

    def test_never_below_lower_bound(self):
        controller = IyerRule(target_conflicts=0.5, step=100.0, initial_limit=5, lower_bound=2)
        assert controller.update(measurement(commits=10, conflicts=100)) == 2.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            IyerRule(target_conflicts=0.0)
        with pytest.raises(ValueError):
            IyerRule(step=0.0)
        with pytest.raises(ValueError):
            IyerRule(deadband=-0.1)

    def test_converges_near_target_on_synthetic_conflict_model(self):
        """Closed loop against a toy plant where conflicts grow linearly with n."""
        controller = IyerRule(target_conflicts=0.75, step=2.0, initial_limit=5,
                              upper_bound=200)
        limit = controller.current_limit
        conflicts_per_txn = 0.0
        for step in range(200):
            conflicts_per_txn = 0.01 * limit  # plant: conflicts proportional to load
            commits = 100
            limit = controller.update(measurement(
                commits=commits, conflicts=int(round(conflicts_per_txn * commits)),
                concurrency=limit, limit=limit, time=float(step)))
        # the plant hits 0.75 conflicts per transaction at n = 75
        assert 55 <= limit <= 95
