"""Integration tests of the closed transaction processing system."""

import math

import pytest

from repro.cc.base import AbortReason
from repro.cc.two_phase_locking import TwoPhaseLocking
from repro.core.admission import AdmissionGate
from repro.core.displacement import DisplacementPolicy, VictimCriterion
from repro.core.static import FixedLimit, NoControl
from repro.core.incremental_steps import IncrementalStepsController
from repro.tp.params import SystemParams, WorkloadParams
from repro.tp.system import TransactionSystem


def small_params(**overrides):
    """A tiny configuration that runs in milliseconds."""
    defaults = dict(
        n_terminals=20,
        think_time=0.2,
        n_cpus=2,
        cpu_init=0.002,
        cpu_per_access=0.002,
        cpu_commit=0.002,
        disk_per_access=0.005,
        disk_commit=0.005,
        restart_delay=0.005,
        seed=42,
        workload=WorkloadParams(db_size=200, accesses_per_txn=4,
                                query_fraction=0.25, write_fraction=0.5),
    )
    defaults.update(overrides)
    return SystemParams(**defaults)


class TestBasicOperation:
    def test_system_commits_transactions(self):
        system = TransactionSystem(small_params())
        system.run(until=10.0)
        assert system.metrics.commits > 0
        assert system.metrics.throughput() > 0

    def test_conservation_admitted_equals_departed_plus_active(self):
        system = TransactionSystem(small_params())
        system.run(until=10.0)
        gate = system.gate
        assert gate.total_admitted == gate.total_departed + gate.current_load

    def test_load_never_exceeds_terminals(self):
        params = small_params()
        system = TransactionSystem(params)
        system.run(until=10.0)
        assert system.gate.current_load <= params.n_terminals
        assert system.gate.load_stats.maximum <= params.n_terminals

    def test_response_times_are_positive(self):
        system = TransactionSystem(small_params())
        system.run(until=10.0)
        assert system.metrics.response_times.minimum > 0

    def test_deterministic_given_seed(self):
        first = TransactionSystem(small_params(seed=7))
        first.run(until=5.0)
        second = TransactionSystem(small_params(seed=7))
        second.run(until=5.0)
        assert first.metrics.commits == second.metrics.commits
        assert first.metrics.restarts == second.metrics.restarts

    def test_different_seeds_differ(self):
        first = TransactionSystem(small_params(seed=1))
        first.run(until=5.0)
        second = TransactionSystem(small_params(seed=2))
        second.run(until=5.0)
        assert (first.metrics.commits, first.metrics.restarts) != (
            second.metrics.commits, second.metrics.restarts)

    def test_start_twice_raises(self):
        system = TransactionSystem(small_params())
        system.start()
        with pytest.raises(RuntimeError):
            system.start()

    def test_summary_keys(self):
        system = TransactionSystem(small_params())
        system.run(until=5.0)
        summary = system.summary()
        for key in ("throughput", "mean_response_time", "cpu_utilisation",
                    "mean_concurrency", "restart_ratio", "current_limit"):
            assert key in summary

    def test_cpu_utilisation_bounded(self):
        system = TransactionSystem(small_params())
        system.run(until=10.0)
        assert 0.0 < system.cpus.utilisation() <= 1.0


class TestAdmissionLimit:
    def test_fixed_limit_caps_concurrency(self):
        params = small_params(think_time=0.01)
        system = TransactionSystem(params)
        system.attach_controller(FixedLimit(3, upper_bound=100), interval=1.0)
        system.run(until=10.0)
        assert system.gate.load_stats.maximum <= 3
        assert system.metrics.commits > 0

    def test_transactions_queue_when_limit_reached(self):
        params = small_params(think_time=0.01, n_terminals=30)
        system = TransactionSystem(params)
        system.attach_controller(FixedLimit(2, upper_bound=100), interval=1.0)
        system.run(until=5.0)
        assert system.gate.queue_stats.maximum > 0

    def test_no_control_admits_everything(self):
        params = small_params(think_time=0.01, n_terminals=15)
        system = TransactionSystem(params)
        system.attach_controller(NoControl(), interval=1.0)
        system.run(until=5.0)
        assert system.gate.queue_stats.maximum == 0

    def test_attach_controller_after_start_raises(self):
        system = TransactionSystem(small_params())
        system.start()
        with pytest.raises(RuntimeError):
            system.attach_controller(FixedLimit(5), interval=1.0)

    def test_controller_trace_is_recorded(self):
        system = TransactionSystem(small_params())
        measurement = system.attach_controller(
            IncrementalStepsController(initial_limit=5, upper_bound=50), interval=1.0)
        system.run(until=10.0)
        assert len(measurement.trace) >= 8
        assert all(limit >= 1 for limit in measurement.trace.limits)


class TestRestartBehaviour:
    def test_contention_produces_restarts(self):
        # a tiny database and write-heavy workload force certification failures
        params = small_params(
            n_terminals=30, think_time=0.02,
            workload=WorkloadParams(db_size=20, accesses_per_txn=4,
                                    query_fraction=0.0, write_fraction=1.0),
        )
        system = TransactionSystem(params)
        system.run(until=10.0)
        assert system.metrics.restarts > 0
        assert system.metrics.aborts_by_reason[AbortReason.CERTIFICATION] > 0

    def test_no_contention_without_writes(self):
        params = small_params(
            workload=WorkloadParams(db_size=200, accesses_per_txn=4,
                                    query_fraction=1.0, write_fraction=0.0))
        system = TransactionSystem(params)
        system.run(until=10.0)
        assert system.metrics.restarts == 0

    def test_commits_happen_despite_heavy_contention(self):
        params = small_params(
            n_terminals=25, think_time=0.02,
            workload=WorkloadParams(db_size=10, accesses_per_txn=3,
                                    query_fraction=0.0, write_fraction=1.0))
        system = TransactionSystem(params)
        system.run(until=15.0)
        assert system.metrics.commits > 0


class TestWithTwoPhaseLocking:
    def test_blocking_cc_commits_transactions(self):
        params = small_params()
        system = TransactionSystem(params)
        system.cc = TwoPhaseLocking(system.sim)
        system.run(until=10.0)
        assert system.metrics.commits > 0
        # with strict 2PL there are no certification aborts
        assert system.metrics.aborts_by_reason[AbortReason.CERTIFICATION] == 0

    def test_deadlocks_are_resolved_and_victims_restart(self):
        params = small_params(
            n_terminals=25, think_time=0.02,
            workload=WorkloadParams(db_size=10, accesses_per_txn=4,
                                    query_fraction=0.0, write_fraction=1.0))
        system = TransactionSystem(params)
        system.cc = TwoPhaseLocking(system.sim)
        system.run(until=15.0)
        assert system.metrics.commits > 0
        # heavy write contention on ten granules must produce deadlocks
        assert system.metrics.aborts_by_reason[AbortReason.DEADLOCK] > 0
        # and the lock table must be consistent: no transaction stuck forever
        assert system.gate.current_load <= params.n_terminals


class TestDisplacement:
    def test_displacement_enforces_lowered_limit(self):
        params = small_params(think_time=0.01, n_terminals=30)
        policy = DisplacementPolicy(criterion=VictimCriterion.YOUNGEST)
        system = TransactionSystem(params, displacement=policy)
        system.attach_controller(FixedLimit(20, upper_bound=100), interval=0.5)
        system.start()
        system.run(until=2.0)
        assert system.gate.current_load > 5
        displaced = system.displace_to(5.0)
        assert displaced > 0
        system.run(until=2.5)
        assert system.gate.current_load <= 20
        assert system.metrics.aborts_by_reason[AbortReason.DISPLACEMENT] >= displaced

    def test_displaced_transactions_eventually_commit(self):
        params = small_params(think_time=0.05, n_terminals=15)
        policy = DisplacementPolicy(criterion=VictimCriterion.YOUNGEST)
        system = TransactionSystem(params, displacement=policy)
        system.attach_controller(FixedLimit(10, upper_bound=100), interval=0.5)
        system.start()
        system.run(until=1.0)
        system.displace_to(2.0)
        before = system.metrics.commits
        system.run(until=8.0)
        assert system.metrics.commits > before

    def test_displace_without_policy_is_noop(self):
        system = TransactionSystem(small_params())
        system.run(until=1.0)
        assert system.displace_to(1.0) == 0

    def test_resubmission_waiting_time_not_inflated(self):
        """Regression: a resubmitted transaction's wait is per-attempt.

        The gate's limit stays infinite, so *every* admission — including
        each resubmission after a forced displacement — is instantaneous.
        Pre-fix, the second admission recorded ``now - submitted_at``,
        which included the first attempt's entire in-system residence, so
        the waiting-time maximum came out positive here.
        """
        params = small_params(think_time=0.05, n_terminals=10)
        policy = DisplacementPolicy(criterion=VictimCriterion.YOUNGEST)
        system = TransactionSystem(params, displacement=policy)
        system.run(until=1.0)
        displaced = system.displace_to(2.0)
        assert displaced > 0
        system.run(until=5.0)
        metrics = system.metrics
        assert metrics.aborts_by_reason[AbortReason.DISPLACEMENT] >= displaced
        assert metrics.waiting_times.count > 0
        assert metrics.waiting_times.maximum == 0.0
