"""Tests for measurement and trace data types."""

import pytest

from repro.core.types import ControlTrace, IntervalMeasurement


def make_measurement(**overrides):
    defaults = dict(
        time=10.0,
        interval_length=5.0,
        throughput=40.0,
        mean_concurrency=20.0,
        concurrency_at_sample=22.0,
        current_limit=25.0,
        commits=200,
        aborts=20,
        conflicts=30,
        mean_response_time=0.5,
    )
    defaults.update(overrides)
    return IntervalMeasurement(**defaults)


class TestIntervalMeasurement:
    def test_interval_length_must_be_positive(self):
        with pytest.raises(ValueError):
            make_measurement(interval_length=0.0)

    def test_throughput_must_be_non_negative(self):
        with pytest.raises(ValueError):
            make_measurement(throughput=-1.0)

    def test_conflicts_per_commit(self):
        measurement = make_measurement(commits=10, conflicts=5)
        assert measurement.conflicts_per_commit == pytest.approx(0.5)

    def test_conflicts_per_commit_no_commits(self):
        measurement = make_measurement(commits=0, conflicts=5)
        assert measurement.conflicts_per_commit == 0.0

    def test_abort_ratio(self):
        measurement = make_measurement(commits=10, aborts=5)
        assert measurement.abort_ratio == pytest.approx(0.5)

    def test_abort_ratio_without_commits(self):
        measurement = make_measurement(commits=0, aborts=3)
        assert measurement.abort_ratio == 3.0

    def test_effective_utilisation_proxy(self):
        measurement = make_measurement(commits=80, aborts=20)
        assert measurement.effective_utilisation_proxy == pytest.approx(0.8)

    def test_effective_utilisation_proxy_empty(self):
        measurement = make_measurement(commits=0, aborts=0)
        assert measurement.effective_utilisation_proxy == 0.0

    def test_frozen(self):
        measurement = make_measurement()
        with pytest.raises(AttributeError):
            measurement.throughput = 1.0


class TestControlTrace:
    def test_append_and_length(self):
        trace = ControlTrace()
        trace.append(make_measurement(time=1.0), new_limit=30.0)
        trace.append(make_measurement(time=2.0), new_limit=35.0)
        assert len(trace) == 2
        assert trace.limits == [30.0, 35.0]
        assert trace.times == [1.0, 2.0]

    def test_mean_throughput(self):
        trace = ControlTrace()
        trace.append(make_measurement(throughput=10.0), 1.0)
        trace.append(make_measurement(throughput=30.0), 1.0)
        assert trace.mean_throughput() == pytest.approx(20.0)

    def test_mean_throughput_empty(self):
        assert ControlTrace().mean_throughput() == 0.0

    def test_limit_series(self):
        trace = ControlTrace()
        trace.append(make_measurement(time=5.0), 12.0)
        assert trace.limit_series() == ((5.0, 12.0),)
