"""Tests for the recursive least-squares estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rls import RecursiveLeastSquares


class TestValidation:
    def test_dimension_must_be_positive(self):
        with pytest.raises(ValueError):
            RecursiveLeastSquares(dimension=0)

    def test_forgetting_range(self):
        with pytest.raises(ValueError):
            RecursiveLeastSquares(dimension=2, forgetting=0.0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(dimension=2, forgetting=1.5)

    def test_initial_covariance_positive(self):
        with pytest.raises(ValueError):
            RecursiveLeastSquares(dimension=2, initial_covariance=0.0)

    def test_regressor_shape_checked(self):
        rls = RecursiveLeastSquares(dimension=3)
        with pytest.raises(ValueError):
            rls.update([1.0, 2.0], 1.0)
        with pytest.raises(ValueError):
            rls.predict([1.0])


class TestEstimation:
    def test_recovers_linear_model_without_noise(self):
        rls = RecursiveLeastSquares(dimension=2, forgetting=1.0)
        true_theta = np.array([3.0, -2.0])
        rng = np.random.default_rng(0)
        for _ in range(200):
            x = np.array([1.0, rng.uniform(-5, 5)])
            rls.update(x, float(x @ true_theta))
        np.testing.assert_allclose(rls.theta, true_theta, atol=1e-3)

    def test_recovers_quadratic_model(self):
        rls = RecursiveLeastSquares(dimension=3, forgetting=1.0)
        a0, a1, a2 = 5.0, 2.0, -0.1
        rng = np.random.default_rng(1)
        for _ in range(300):
            n = rng.uniform(0, 40)
            y = a0 + a1 * n + a2 * n * n
            rls.update([1.0, n, n * n], y)
        np.testing.assert_allclose(rls.theta, [a0, a1, a2], atol=1e-3)

    def test_noisy_estimation_close_to_truth(self):
        rls = RecursiveLeastSquares(dimension=2, forgetting=1.0)
        true_theta = np.array([1.5, 0.7])
        rng = np.random.default_rng(2)
        for _ in range(3000):
            x = np.array([1.0, rng.uniform(-10, 10)])
            rls.update(x, float(x @ true_theta) + rng.normal(0, 0.5))
        np.testing.assert_allclose(rls.theta, true_theta, atol=0.05)

    def test_forgetting_tracks_changed_model(self):
        """With fading memory the estimator follows an abrupt model change."""
        rls = RecursiveLeastSquares(dimension=2, forgetting=0.85)
        rng = np.random.default_rng(3)
        for _ in range(200):
            x = np.array([1.0, rng.uniform(-5, 5)])
            rls.update(x, float(x @ np.array([1.0, 1.0])))
        for _ in range(200):
            x = np.array([1.0, rng.uniform(-5, 5)])
            rls.update(x, float(x @ np.array([-4.0, 2.0])))
        np.testing.assert_allclose(rls.theta, [-4.0, 2.0], atol=0.05)

    def test_no_forgetting_averages_changed_model(self):
        """Without fading memory the old model keeps polluting the estimate."""
        fading = RecursiveLeastSquares(dimension=2, forgetting=0.85)
        infinite = RecursiveLeastSquares(dimension=2, forgetting=1.0)
        rng = np.random.default_rng(4)
        for estimator in (fading, infinite):
            rng = np.random.default_rng(4)
            for _ in range(200):
                x = np.array([1.0, rng.uniform(-5, 5)])
                estimator.update(x, float(x @ np.array([1.0, 1.0])))
            for _ in range(100):
                x = np.array([1.0, rng.uniform(-5, 5)])
                estimator.update(x, float(x @ np.array([-4.0, 2.0])))
        fading_error = np.linalg.norm(fading.theta - np.array([-4.0, 2.0]))
        infinite_error = np.linalg.norm(infinite.theta - np.array([-4.0, 2.0]))
        assert fading_error < infinite_error

    def test_predict_matches_theta(self):
        rls = RecursiveLeastSquares(dimension=2, forgetting=1.0)
        for x1 in range(1, 20):
            rls.update([1.0, float(x1)], 2.0 + 3.0 * x1)
        assert rls.predict([1.0, 10.0]) == pytest.approx(32.0, abs=1e-3)

    def test_effective_memory(self):
        assert RecursiveLeastSquares(2, forgetting=0.9).effective_memory == pytest.approx(10.0)
        assert RecursiveLeastSquares(2, forgetting=1.0).effective_memory == float("inf")

    def test_covariance_stays_bounded_without_excitation(self):
        rls = RecursiveLeastSquares(dimension=2, forgetting=0.9,
                                    max_covariance_trace=1e6)
        # the same regressor over and over: the unexcited direction's variance
        # would blow up geometrically without the trace guard
        for _ in range(2000):
            rls.update([1.0, 5.0], 10.0)
        assert np.trace(rls.covariance) <= 1e6 * 1.01
        assert np.all(np.isfinite(rls.covariance))

    def test_reset_with_seed(self):
        rls = RecursiveLeastSquares(dimension=2)
        rls.update([1.0, 2.0], 3.0)
        rls.reset([7.0, 8.0])
        np.testing.assert_allclose(rls.theta, [7.0, 8.0])
        assert rls.samples == 0
        with pytest.raises(ValueError):
            rls.reset([1.0])

    def test_samples_counter(self):
        rls = RecursiveLeastSquares(dimension=1)
        for value in range(5):
            rls.update([1.0], float(value))
        assert rls.samples == 5

    @given(theta0=st.floats(min_value=-50, max_value=50),
           theta1=st.floats(min_value=-5, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_exact_recovery_property(self, theta0, theta1):
        rls = RecursiveLeastSquares(dimension=2, forgetting=1.0)
        for n in range(60):
            x = [1.0, float(n)]
            rls.update(x, theta0 + theta1 * n)
        assert rls.predict([1.0, 100.0]) == pytest.approx(theta0 + theta1 * 100.0,
                                                          rel=1e-4, abs=1e-3)
