"""Tests for optimistic concurrency control with forward validation."""

import pytest

from repro.cc.base import AbortReason
from repro.cc.occ_forward import OccForwardValidation
from repro.cc.timestamp_cert import TimestampCertification
from repro.sim.engine import Simulator
from repro.tp.transaction import Transaction, TransactionClass


def make_txn(txn_id, items, writes=()):
    flags = tuple(item in writes for item in items)
    cls = TransactionClass.UPDATER if any(flags) else TransactionClass.QUERY
    return Transaction(
        txn_id=txn_id,
        terminal_id=0,
        txn_class=cls,
        items=tuple(items),
        write_flags=flags,
    )


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cc(sim):
    return OccForwardValidation(sim)


class TestForwardValidation:
    def test_unconflicted_transactions_commit(self, cc):
        txn = make_txn(1, [3, 4], writes=[4])
        cc.begin(txn)
        cc.access(txn, 3, is_write=False)
        cc.access(txn, 4, is_write=True)
        assert cc.try_commit(txn) is True
        cc.finish(txn)
        assert cc.active_count() == 0
        assert cc.failure_fraction == 0.0

    def test_committer_invalidates_overlapping_reader(self, sim, cc):
        reader = make_txn(1, [7])
        writer = make_txn(2, [7], writes=[7])
        cc.begin(reader)
        cc.begin(writer)
        cc.access(reader, 7, is_write=False)   # read BEFORE the commit
        cc.access(writer, 7, is_write=True)
        assert cc.try_commit(writer) is True   # the validator always wins
        cc.finish(writer)
        assert cc.invalidations == 1
        assert cc.try_commit(reader) is False  # the victim dies at its turn
        assert reader.last_conflicts == 1
        cc.abort(reader, AbortReason.CERTIFICATION)
        assert cc.active_count() == 0

    def test_read_after_commit_is_not_invalidated(self, sim, cc):
        """Forward validation's whole point: later readers serialise after."""
        reader = make_txn(1, [7])
        writer = make_txn(2, [7], writes=[7])
        cc.begin(reader)
        cc.begin(writer)
        cc.access(writer, 7, is_write=True)
        assert cc.try_commit(writer) is True
        cc.finish(writer)
        cc.access(reader, 7, is_write=False)   # read AFTER the commit
        assert cc.try_commit(reader) is True
        cc.finish(reader)
        assert cc.validation_failures == 0

    def test_less_pessimistic_than_backward_certification(self, sim):
        """The same interleaving aborts under backward cert, commits forward.

        A transaction starts, another commits a write it has NOT yet read,
        then it reads the granule: backward certification charges the
        committed write against the reader's start timestamp; forward
        validation sees no overlap at the commit instant and lets both
        commit.
        """
        forward = OccForwardValidation(sim)
        backward = TimestampCertification(sim)
        for scheme, expected in ((forward, True), (backward, False)):
            reader = make_txn(1, [7])
            writer = make_txn(2, [7], writes=[7])
            scheme.begin(reader)               # starts BEFORE the commit
            scheme.begin(writer)
            scheme.access(writer, 7, is_write=True)
            assert scheme.try_commit(writer) is True
            scheme.finish(writer)
            sim.run(until=sim.now + 1.0)  # let time pass (backward compares ts)
            scheme.access(reader, 7, is_write=False)
            assert scheme.try_commit(reader) is expected, scheme.name

    def test_write_write_conflicts_are_caught_via_implied_reads(self, cc):
        first = make_txn(1, [5], writes=[5])
        second = make_txn(2, [5], writes=[5])
        cc.begin(first)
        cc.begin(second)
        cc.access(first, 5, is_write=True)
        cc.access(second, 5, is_write=True)
        assert cc.try_commit(first) is True
        cc.finish(first)
        assert cc.try_commit(second) is False

    def test_restart_clears_the_invalidation(self, cc):
        reader = make_txn(1, [7])
        writer = make_txn(2, [7], writes=[7])
        cc.begin(reader)
        cc.begin(writer)
        cc.access(reader, 7, is_write=False)
        cc.access(writer, 7, is_write=True)
        cc.try_commit(writer)
        cc.finish(writer)
        assert cc.try_commit(reader) is False
        cc.abort(reader, AbortReason.CERTIFICATION)
        # the restarted execution reads after the commit: clean slate
        reader.start_execution(0.0)
        cc.begin(reader)
        cc.access(reader, 7, is_write=False)
        assert cc.try_commit(reader) is True

    def test_read_only_committer_invalidates_nobody(self, cc):
        query = make_txn(1, [3, 4])
        other = make_txn(2, [3])
        cc.begin(query)
        cc.begin(other)
        cc.access(other, 3, is_write=False)
        cc.access(query, 3, is_write=False)
        cc.access(query, 4, is_write=False)
        assert cc.try_commit(query) is True
        cc.finish(query)
        assert cc.invalidations == 0
        assert cc.try_commit(other) is True

    def test_reset_forgets_everything(self, cc):
        txn = make_txn(1, [3], writes=[3])
        cc.begin(txn)
        cc.access(txn, 3, is_write=True)
        cc.try_commit(txn)
        cc.reset()
        assert cc.active_count() == 0
        assert cc.validations == 0
        assert cc.invalidations == 0
