"""Ablation (Section 1): feedback control vs. the non-adaptive alternatives.

Section 1 lists the alternatives to feedback control: do nothing, a fixed
upper bound tuned by the administrator, and theoretically derived rules of
thumb (Tay, Iyer).  The paper argues these are inadequate when the workload
changes.  This ablation runs all six policies through the same workload jump
(transaction size doubles mid-run) on a reduced configuration and compares
the useful work they deliver.

Expectations encoded as assertions:

* every admission-controlled policy beats "do nothing";
* the adaptive feedback controllers (IS, PA) are competitive with the best
  policy overall (within 25%), without knowing the workload parameters.
"""

from conftest import run_once

from repro.core.incremental_steps import IncrementalStepsController
from repro.core.parabola import ParabolaController
from repro.core.rules import IyerRule, TayRule
from repro.core.static import FixedLimit, NoControl
from repro.experiments.config import default_system_params
from repro.experiments.dynamic import jump_scenario, run_tracking_experiment
from repro.experiments.report import format_table
from repro.tp.params import WorkloadParams


def _policies(params):
    upper = params.n_terminals
    return {
        "no control": lambda: NoControl(upper_bound=upper),
        "fixed limit (tuned for small txns)": lambda: FixedLimit(40, upper_bound=upper),
        "tay rule": lambda: TayRule(db_size=params.workload.db_size,
                                    accesses_per_txn=params.workload.accesses_per_txn,
                                    upper_bound=upper),
        "iyer rule": lambda: IyerRule(target_conflicts=0.75, step=3.0, initial_limit=20,
                                      upper_bound=upper),
        "incremental steps": lambda: IncrementalStepsController(
            initial_limit=20, beta=1.0, gamma=5, delta=10, min_step=2.0,
            lower_bound=2, upper_bound=upper),
        "parabola approximation": lambda: ParabolaController(
            initial_limit=20, forgetting=0.9, probe_amplitude=3.0, max_move=30.0,
            lower_bound=2, upper_bound=upper),
    }


def test_ablation_controllers_vs_baselines(benchmark, scale):
    base = default_system_params(seed=29)
    params = base.with_changes(
        n_terminals=250,
        workload=WorkloadParams(db_size=2000, accesses_per_txn=6,
                                query_fraction=0.25, write_fraction=0.5))
    scenario = jump_scenario("accesses", 6, 12, jump_time=scale.tracking_horizon / 2.0)

    def experiment():
        rows = {}
        for name, factory in _policies(params).items():
            result = run_tracking_experiment(factory(), scenario, base_params=params,
                                             scale=scale)
            rows[name] = {
                "commits": result.total_commits,
                "mean_response_time": result.mean_response_time,
                "mean_throughput": result.trace.mean_throughput(),
            }
        return rows

    rows = run_once(benchmark, experiment)

    print()
    print("Ablation — load-control policies under a workload jump")
    print(format_table(
        ["policy", "commits", "mean throughput", "mean response time"],
        [[name, row["commits"], row["mean_throughput"], row["mean_response_time"]]
         for name, row in rows.items()]))

    for name, row in rows.items():
        benchmark.extra_info[f"{name} commits"] = row["commits"]

    best = max(row["commits"] for row in rows.values())
    no_control = rows["no control"]["commits"]
    for name in ("incremental steps", "parabola approximation", "iyer rule", "tay rule",
                 "fixed limit (tuned for small txns)"):
        assert rows[name]["commits"] >= no_control, f"{name} did worse than doing nothing"
    for name in ("incremental steps", "parabola approximation"):
        assert rows[name]["commits"] >= 0.75 * best, (
            f"{name} fell more than 25% behind the best policy")
